package planner

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// numStrategies sizes the per-class strategy arrays; core.XPatterns is
// the last strategy constant.
const numStrategies = int(core.XPatterns) + 1

// Mode selects how much the planner is allowed to do.
type Mode int

// Planner modes.
const (
	// Off disables planning: Auto resolves by the static fragment
	// switch in core.Engine.StrategyFor.
	Off Mode = iota
	// Rules routes on the structural shape rules alone — deterministic
	// and statistics-free.
	Rules
	// Adaptive starts from the rules and refines the choice online
	// from latency observations, with a deterministic epsilon-explore.
	Adaptive
)

var modeNames = map[Mode]string{Off: "off", Rules: "rules", Adaptive: "adaptive"}

// String returns the mode's flag name.
func (m Mode) String() string {
	if n, ok := modeNames[m]; ok {
		return n
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ModeByName resolves a -planner flag value.
func ModeByName(name string) (Mode, bool) {
	for m, n := range modeNames {
		if n == name {
			return m, true
		}
	}
	return 0, false
}

// EntryStats is the per-cache-entry latency evidence the engine hands
// the planner at decision time: the engine's compiled-query cache
// keeps a per-strategy EWMA on each shared entry, which is the most
// specific evidence available (this exact query, this strategy).
type EntryStats interface {
	// StrategySeconds returns the entry's mean observed latency for a
	// strategy, and whether any observation exists.
	StrategySeconds(s core.Strategy) (float64, bool)
}

// Candidate is one strategy the planner considered for a query, with
// the latency estimate (if any) that ranked it.
type Candidate struct {
	Strategy core.Strategy
	// Seconds is the estimated latency; negative when no observation
	// exists and the rule order alone ranked the candidate.
	Seconds float64
	// Source names where the estimate came from: "entry" (this exact
	// query's cache entry), "class" (the shape class EWMA), "matrix"
	// (the xpath_query_seconds histogram cell), or "rule" (no
	// observation).
	Source string
	// Banned reports the strategy failed structurally for this shape
	// class (bottomup tripping ErrTableLimit) and is excluded.
	Banned bool
}

// Decision is the full outcome of one planning pass — what ran and
// why, for responses, spans and cmd/xpathexplain.
type Decision struct {
	Strategy core.Strategy
	// Explored is set when the deterministic epsilon-explore overrode
	// the best-estimate pick to gather evidence on an under-sampled
	// candidate.
	Explored bool
	// Rationale is a one-line human-readable reason ("rules: ...",
	// "observed: ...", "explore: ...").
	Rationale string
	Shape     Shape
	Class     Class
	// Candidates lists every strategy considered, in rule-preference
	// order.
	Candidates []Candidate
}

// Config configures a Planner.
type Config struct {
	// Mode defaults to Rules when zero-valued Off is passed to New
	// callers that want a planner at all; engine constructs no planner
	// for Off.
	Mode Mode
	// ExploreEvery samples an under-tried candidate once every N
	// decisions per shape class (default 16; <0 disables exploration).
	// Exploration is deterministic — every Nth decision — so tests and
	// replays see identical routing.
	ExploreEvery int
	// Matrix is the engine's xpath_query_seconds (fragment, strategy)
	// histogram family, consulted as fleet-level evidence when neither
	// the cache entry nor the shape class has observations. Optional.
	Matrix *obs.HistogramVec
	// Registry receives the planner's decision/exploration/ban/win
	// counters (nil: a private registry, keeping the instruments live
	// but unexported).
	Registry *obs.Registry
}

// Planner picks strategies. One Planner serves all sessions of an
// engine; all state is safe for concurrent use.
type Planner struct {
	mode         Mode
	exploreEvery uint64
	matrix       *obs.HistogramVec

	decisions *obs.CounterVec
	nDecide   atomic.Uint64
	nExplore  atomic.Uint64
	nBan      atomic.Uint64
	nWin      atomic.Uint64

	mu      sync.RWMutex
	classes map[Class]*classState
}

// classState is the adaptive state for one shape class. EWMAs are
// float64 bits in atomics (0 = no observation; a real latency is never
// exactly +0s), so the hot path takes no lock.
type classState struct {
	n      atomic.Uint64 // decisions made for this class
	trials [numStrategies]atomic.Uint64
	banned [numStrategies]atomic.Bool
	ewma   [numStrategies]atomic.Uint64
}

// ewmaAlpha weights the newest observation; 0.3 tracks shifts within a
// few requests without letting one outlier repaint the estimate.
const ewmaAlpha = 0.3

func ewmaUpdate(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		nv := v
		if old != 0 {
			nv = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*v
		}
		if a.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

func ewmaLoad(a *atomic.Uint64) (float64, bool) {
	bits := a.Load()
	if bits == 0 {
		return 0, false
	}
	return math.Float64frombits(bits), true
}

// New creates a planner.
func New(cfg Config) *Planner {
	if cfg.ExploreEvery == 0 {
		cfg.ExploreEvery = 16
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	p := &Planner{
		mode:    cfg.Mode,
		matrix:  cfg.Matrix,
		classes: make(map[Class]*classState),
	}
	if cfg.ExploreEvery > 0 {
		p.exploreEvery = uint64(cfg.ExploreEvery)
	}
	p.decisions = cfg.Registry.CounterVec("xpath_planner_decisions_total", "planner strategy decisions by chosen strategy", "strategy")
	cfg.Registry.CounterFunc("xpath_planner_explore_total", "planner decisions that sampled an under-tried strategy", func() float64 {
		return float64(p.nExplore.Load())
	})
	cfg.Registry.CounterFunc("xpath_planner_bans_total", "strategies banned for a shape class after a structural failure", func() float64 {
		return float64(p.nBan.Load())
	})
	cfg.Registry.CounterFunc("xpath_planner_wins_total", "observation-driven picks measured faster than the rule pick's running estimate", func() float64 {
		return float64(p.nWin.Load())
	})
	cfg.Registry.GaugeFunc("xpath_planner_classes", "distinct shape classes with planner state", func() float64 {
		p.mu.RLock()
		defer p.mu.RUnlock()
		return float64(len(p.classes))
	})
	return p
}

// Mode returns the planner's configured mode.
func (p *Planner) Mode() Mode { return p.mode }

// SetExploreEvery retunes the exploration period (0 or negative
// disables exploration). Call before the planner starts serving
// traffic; it is not synchronized with in-flight decisions.
func (p *Planner) SetExploreEvery(n int) {
	if n <= 0 {
		p.exploreEvery = 0
		return
	}
	p.exploreEvery = uint64(n)
}

func (p *Planner) class(c Class) *classState {
	p.mu.RLock()
	cs, ok := p.classes[c]
	p.mu.RUnlock()
	if ok {
		return cs
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cs, ok := p.classes[c]; ok {
		return cs
	}
	cs = &classState{}
	p.classes[c] = cs
	return cs
}

// The rule orders are package-level so the per-request decision does
// not allocate them; callers never mutate the returned slices.
var (
	orderCoreXPath = []core.Strategy{core.CoreXPath, core.OptMinContext, core.TopDown, core.MinContext, core.BottomUp}
	orderXPatterns = []core.Strategy{core.XPatterns, core.OptMinContext, core.TopDown, core.MinContext, core.BottomUp}
	orderWadler    = []core.Strategy{core.OptMinContext, core.MinContext, core.TopDown, core.BottomUp}
	orderDeepPred  = []core.Strategy{core.TopDown, core.OptMinContext, core.MinContext, core.BottomUp}
	orderFullXPath = []core.Strategy{core.OptMinContext, core.MinContext, core.TopDown, core.BottomUp}
)

// ruleOrder ranks the strategies applicable to the shape, best first,
// with a one-line rationale for the head pick. Only engines that
// accept the query's fragment appear: the linear fragment algebras
// lead their own fragments, and the exponential baselines (naive,
// datapool) never appear — they exist as experimental lower bounds,
// not serving options.
func (sh Shape) ruleOrder() ([]core.Strategy, string) {
	switch sh.Fragment {
	case core.FragmentCoreXPath:
		return orderCoreXPath,
			"Core XPath fragment: the linear-time set algebra (Section 10.1) dominates the polynomial engines"
	case core.FragmentXPatterns:
		return orderXPatterns,
			"XPatterns fragment: the linear-time XPatterns algebra (Section 10.2) dominates the polynomial engines"
	case core.FragmentWadler:
		return orderWadler,
			"Extended Wadler Fragment: OptMinContext evaluates it bottom-up in linear time per step (Section 11.2)"
	}
	if sh.MaxPredDepth >= 3 && sh.DocNodes > 0 && sh.DocNodes <= smallDocNodes {
		return orderDeepPred,
			"full XPath with deeply nested predicates over a small document: the vectorized top-down evaluator (Section 7) avoids the context-value-table blowup in nesting depth"
	}
	return orderFullXPath,
		"full XPath: OptMinContext degrades gracefully to MinContext bounds (Section 11.2)"
}

// smallDocNodes is the document size under which per-node overheads,
// not asymptotics, decide full-XPath routing.
const smallDocNodes = 1024

// estimate returns the best available latency evidence for running
// strategy s on this shape, most specific source first: the query's
// own cache entry, then the shape class EWMA, then the fleet-level
// (fragment, strategy) histogram cell. Negative when no evidence
// exists.
func (p *Planner) estimate(cs *classState, entry EntryStats, frag core.Fragment, s core.Strategy) (float64, string) {
	if entry != nil {
		if v, ok := entry.StrategySeconds(s); ok {
			return v, "entry"
		}
	}
	if v, ok := ewmaLoad(&cs.ewma[s]); ok {
		return v, "class"
	}
	if p.matrix != nil {
		if h := p.matrix.Peek(FragmentLabel(frag), s.String()); h != nil && h.Count() > 0 {
			return h.Sum() / float64(h.Count()), "matrix"
		}
	}
	return -1, "rule"
}

// Decide plans one request: it records the decision (trial counts,
// exploration schedule, metrics) and returns the strategy to run.
// entry, when non-nil, is the query's shared cache entry with its
// per-strategy latency EWMAs.
func (p *Planner) Decide(q *core.Query, docNodes int, entry EntryStats) Decision {
	return p.decide(Extract(q, docNodes), entry, true, true)
}

// Route is Decide for the serving hot path: it commits the decision
// (trial accounting, exploration schedule, metrics) but builds none of
// the explanatory material — no candidate list, no rationale string —
// and takes an already-extracted shape, which the engine memoizes on
// the query's cache entry. It returns the strategy to run and whether
// the exploration schedule overrode the best-estimate pick.
func (p *Planner) Route(sh Shape, entry EntryStats) (core.Strategy, bool) {
	d := p.decide(sh, entry, true, false)
	return d.Strategy, d.Explored
}

// Peek is Decide without side effects: no trial accounting, no
// exploration, no metrics. It is the core.StrategyPlanner hook and the
// basis of explain output.
func (p *Planner) Peek(q *core.Query, docNodes int) Decision {
	return p.decide(Extract(q, docNodes), nil, false, true)
}

// PickStrategy implements core.StrategyPlanner, so a core.Engine with
// strategy Auto resolves StrategyFor through the planner.
func (p *Planner) PickStrategy(q *core.Query, docNodes int) core.Strategy {
	return p.Peek(q, docNodes).Strategy
}

// decide is the one decision path. commit records the decision;
// explain additionally builds the candidate list and rationale string,
// which only explain-style callers (Decide, Peek) want — the serving
// hot path (Route) skips those allocations.
func (p *Planner) decide(sh Shape, entry EntryStats, commit, explain bool) Decision {
	cls := sh.Class()
	cs := p.class(cls)
	order, ruleWhy := sh.ruleOrder()

	d := Decision{Shape: sh, Class: cls}
	if explain {
		d.Candidates = make([]Candidate, 0, len(order))
	}
	rulePick := core.MinContext // if every candidate is banned; cannot itself trip a row limit
	haveRule := false
	best := core.Auto
	bestSecs := math.Inf(1)
	for _, s := range order {
		banned := cs.banned[s].Load()
		secs, source := -1.0, "rule"
		if !banned || explain {
			secs, source = p.estimate(cs, entry, sh.Fragment, s)
		}
		if explain {
			d.Candidates = append(d.Candidates, Candidate{Strategy: s, Seconds: secs, Source: source, Banned: banned})
		}
		if banned {
			continue
		}
		if !haveRule {
			rulePick, haveRule = s, true
		}
		if p.mode == Adaptive && secs >= 0 && secs < bestSecs {
			best, bestSecs = s, secs
		}
	}

	pick := rulePick
	switch {
	case !haveRule:
		if explain {
			d.Rationale = "all candidates banned for this class; MinContext cannot trip a table limit"
		}
	case p.mode == Adaptive && best != core.Auto && best != rulePick:
		pick = best
		if explain {
			d.Rationale = fmt.Sprintf("observed: %s at ~%.3gms beats rule pick %s for class %s", best, bestSecs*1e3, rulePick, cls)
		}
	case p.mode == Adaptive && best == rulePick:
		if explain {
			d.Rationale = fmt.Sprintf("observed: ~%.3gms confirms rules — %s", bestSecs*1e3, ruleWhy)
		}
	default:
		if explain {
			d.Rationale = "rules: " + ruleWhy
		}
	}

	if commit {
		if p.mode == Adaptive && p.exploreEvery > 0 && haveRule {
			if n := cs.n.Add(1); n%p.exploreEvery == 0 {
				if alt, ok := p.exploreCandidate(cs, order, pick); ok {
					pick = alt
					d.Explored = true
					if explain {
						d.Rationale = fmt.Sprintf("explore: sampling %s for class %s (decision %d)", alt, cls, n)
					}
				}
			}
		}
		cs.trials[pick].Add(1)
		p.nDecide.Add(1)
		p.decisions.Inc(pick.String())
		if d.Explored {
			p.nExplore.Add(1)
		}
	}
	d.Strategy = pick
	return d
}

// exploreCandidate picks the least-tried unbanned candidate other than
// the current pick, so every applicable engine keeps accumulating
// fresh evidence and a shifted workload is eventually noticed.
func (p *Planner) exploreCandidate(cs *classState, order []core.Strategy, pick core.Strategy) (core.Strategy, bool) {
	alt := core.Auto
	altTrials := uint64(math.MaxUint64)
	for _, s := range order {
		if s == pick || cs.banned[s].Load() {
			continue
		}
		if t := cs.trials[s].Load(); t < altTrials {
			alt, altTrials = s, t
		}
	}
	return alt, alt != core.Auto
}

// Observe feeds one evaluation outcome back: the strategy that ran,
// how long it took, and whether it failed structurally (tripped
// bottomup.ErrTableLimit). Failures ban the strategy for the shape
// class; successes update the class EWMA and, when an
// observation-driven pick beat the rule pick's running estimate, count
// a win.
func (p *Planner) Observe(q *core.Query, docNodes int, s core.Strategy, d time.Duration, failed bool) {
	p.ObserveShape(Extract(q, docNodes), s, d, failed)
}

// ObserveShape is Observe with an already-extracted shape — the
// serving hot path's variant, fed from the cache entry's memoized
// shape so feedback costs no second AST walk.
func (p *Planner) ObserveShape(sh Shape, s core.Strategy, d time.Duration, failed bool) {
	if int(s) < 0 || int(s) >= numStrategies {
		return
	}
	cs := p.class(sh.Class())
	if failed {
		if !cs.banned[s].Swap(true) {
			p.nBan.Add(1)
		}
		return
	}
	secs := d.Seconds()
	order, _ := sh.ruleOrder()
	for _, r := range order {
		if cs.banned[r].Load() {
			continue
		}
		if s != r {
			if v, ok := ewmaLoad(&cs.ewma[r]); ok && secs < v {
				p.nWin.Add(1)
			}
		}
		break
	}
	ewmaUpdate(&cs.ewma[s], secs)
}

// Stats is a point-in-time reading of the planner's counters, the same
// atomics the /metrics instruments read.
type Stats struct {
	Mode string
	// Decisions counts committed Decide calls; Explored the subset
	// that sampled an under-tried strategy.
	Decisions, Explored uint64
	// Bans counts (class, strategy) pairs banned after a structural
	// failure; Wins counts observation-driven picks that measured
	// faster than the rule pick's running estimate.
	Bans, Wins uint64
	// Classes is the number of distinct shape classes with state.
	Classes int
}

// Stats returns current planner statistics.
func (p *Planner) Stats() Stats {
	p.mu.RLock()
	classes := len(p.classes)
	p.mu.RUnlock()
	return Stats{
		Mode:      p.mode.String(),
		Decisions: p.nDecide.Load(),
		Explored:  p.nExplore.Load(),
		Bans:      p.nBan.Load(),
		Wins:      p.nWin.Load(),
		Classes:   classes,
	}
}
