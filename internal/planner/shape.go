// Package planner chooses the expected-fastest evaluation strategy for
// each compiled query, per request. It closes the loop the repository
// has been building toward: the paper gives a lattice of XPath
// fragments with engines of very different complexity (linear Core
// XPath and XPatterns algebras, the polynomial context-value-table
// family, the exponential naive baseline), and the observability layer
// records evaluation latency per (fragment, strategy) cell precisely so
// a planner can route on measurements instead of guesses.
//
// The design follows the "cheap structural planning first" thesis:
// a handful of shape-derived rules pick a strategy in O(|query|) with
// no statistics at all, and adaptive mode then refines the choice
// online — per-shape-class latency EWMAs, per-cache-entry EWMAs, and
// the xpath_query_seconds histogram matrix, in that order of
// specificity — with a small deterministic epsilon-explore so a
// mispredicted shape class corrects itself instead of being wrong
// forever. A strategy that fails structurally (bottomup tripping its
// context-value-table row limit) is banned for that shape class on the
// spot.
package planner

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/axes"
	"repro/internal/core"
	"repro/internal/xpath"
)

// Shape is the structural feature vector the planner extracts from a
// compiled query: everything the routing rules and the class key look
// at, in one O(|query|) AST walk.
type Shape struct {
	// Fragment is the smallest lattice fragment containing the query —
	// the dominant routing feature, since it decides which linear
	// fragment algebras are even applicable.
	Fragment core.Fragment
	// Steps counts location steps across the whole expression,
	// including steps inside predicates.
	Steps int
	// ReverseSteps counts steps on reverse axes (parent, ancestor,
	// ancestor-or-self, preceding, preceding-sibling).
	ReverseSteps int
	// SpineSteps counts steps on the document-sized axes (descendant,
	// descendant-or-self, following, preceding) whose node sets grow
	// with the document rather than the fanout.
	SpineSteps int
	// MaxPredDepth is the deepest predicate nesting ([..[..]..] = 2).
	MaxPredDepth int
	// Positionals counts position()/last() occurrences; normalization
	// rewrites numeric predicates like [3] into [position() = 3], so
	// this also counts those.
	Positionals int
	// Unions counts union operators; a top-level union of w branches
	// contributes w-1.
	Unions int
	// Calls counts core-library calls other than position()/last().
	Calls int
	// Arith counts arithmetic and comparison operators.
	Arith int
	// DocNodes is the size of the document the query is being planned
	// against (0 when unknown).
	DocNodes int
}

// Extract computes the query's shape against a document of docNodes
// nodes.
func Extract(q *core.Query, docNodes int) Shape {
	return ExtractQuery(q).WithDoc(docNodes)
}

// ExtractQuery computes the document-independent part of the shape —
// everything but DocNodes. The AST walk is deterministic per query, so
// the engine memoizes this on the shared cache entry and completes it
// per request with WithDoc, keeping shape extraction off the serving
// hot path.
func ExtractQuery(q *core.Query) Shape {
	sh := Shape{Fragment: q.Fragment()}
	shapeWalk(q.Expr(), 0, &sh)
	return sh
}

// WithDoc completes a memoized shape against a concrete document size.
func (sh Shape) WithDoc(docNodes int) Shape {
	sh.DocNodes = docNodes
	return sh
}

// shapeWalk accumulates features over the normalized AST. predDepth is
// the number of enclosing predicates at e.
func shapeWalk(e xpath.Expr, predDepth int, sh *Shape) {
	switch x := e.(type) {
	case *xpath.Number, *xpath.Literal, *xpath.VarRef, nil:
	case *xpath.Negate:
		shapeWalk(x.X, predDepth, sh)
	case *xpath.Binary:
		switch {
		case x.Op == xpath.OpUnion:
			sh.Unions++
		case x.Op.IsArith() || x.Op.IsRelOp():
			sh.Arith++
		}
		shapeWalk(x.Left, predDepth, sh)
		shapeWalk(x.Right, predDepth, sh)
	case *xpath.Call:
		switch x.Name {
		case "position", "last":
			sh.Positionals++
		default:
			sh.Calls++
		}
		for _, a := range x.Args {
			shapeWalk(a, predDepth, sh)
		}
	case *xpath.FilterExpr:
		shapeWalk(x.Primary, predDepth, sh)
		shapePreds(x.Preds, predDepth, sh)
	case *xpath.Path:
		if x.Filter != nil {
			shapeWalk(x.Filter, predDepth, sh)
		}
		for _, st := range x.Steps {
			sh.Steps++
			if st.Axis.IsReverse() {
				sh.ReverseSteps++
			}
			switch st.Axis {
			case axes.Descendant, axes.DescendantOrSelf, axes.Following, axes.Preceding:
				sh.SpineSteps++
			}
			shapePreds(st.Preds, predDepth, sh)
		}
	}
}

func shapePreds(preds []xpath.Expr, predDepth int, sh *Shape) {
	if len(preds) == 0 {
		return
	}
	depth := predDepth + 1
	if depth > sh.MaxPredDepth {
		sh.MaxPredDepth = depth
	}
	for _, p := range preds {
		shapeWalk(p, depth, sh)
	}
}

// String renders the feature vector for explain output and span
// attributes.
func (sh Shape) String() string {
	return fmt.Sprintf("fragment=%s steps=%d reverse=%d spine=%d pred_depth=%d positionals=%d unions=%d calls=%d arith=%d doc_nodes=%d",
		FragmentLabel(sh.Fragment), sh.Steps, sh.ReverseSteps, sh.SpineSteps,
		sh.MaxPredDepth, sh.Positionals, sh.Unions, sh.Calls, sh.Arith, sh.DocNodes)
}

// Class is a coarse bucketing of Shape: the key under which the
// adaptive planner accumulates latency observations and failure bans.
// Buckets are deliberately wide — a class needs enough traffic to
// learn from, and two queries in one class should genuinely prefer the
// same engine.
type Class struct {
	Fragment core.Fragment
	// Steps and PredDepth are log-ish buckets (see bucketSteps), Doc a
	// log16 bucket of the document size.
	Steps, PredDepth, Doc uint8
	// Feature bits that change which engine wins independently of
	// size: positional predicates, unions, reverse axes, document-
	// sized axes.
	Positional, Union, Reverse, Spine bool
}

// Class buckets the shape.
func (sh Shape) Class() Class {
	return Class{
		Fragment:   sh.Fragment,
		Steps:      bucketSteps(sh.Steps),
		PredDepth:  bucketDepth(sh.MaxPredDepth),
		Doc:        bucketDoc(sh.DocNodes),
		Positional: sh.Positionals > 0,
		Union:      sh.Unions > 0,
		Reverse:    sh.ReverseSteps > 0,
		Spine:      sh.SpineSteps > 0,
	}
}

func bucketSteps(n int) uint8 {
	switch {
	case n <= 2:
		return 0
	case n <= 6:
		return 1
	case n <= 14:
		return 2
	default:
		return 3
	}
}

func bucketDepth(n int) uint8 {
	if n > 3 {
		return 3
	}
	return uint8(n)
}

// bucketDoc is a log16 size bucket: documents within a 16× size band
// share planner state.
func bucketDoc(n int) uint8 {
	if n <= 0 {
		return 0
	}
	b := (bits.Len(uint(n)) - 1) / 4
	if b > 7 {
		b = 7
	}
	return uint8(b)
}

// String renders the class key, e.g. "core_xpath/s2/p1/d3+pos+rev".
func (c Class) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/s%d/p%d/d%d", FragmentLabel(c.Fragment), c.Steps, c.PredDepth, c.Doc)
	if c.Positional {
		b.WriteString("+pos")
	}
	if c.Union {
		b.WriteString("+union")
	}
	if c.Reverse {
		b.WriteString("+rev")
	}
	if c.Spine {
		b.WriteString("+spine")
	}
	return b.String()
}

// FragmentLabel maps a fragment class to its snake_case metric label —
// the label vocabulary of xpath_query_seconds{fragment=...}. The
// display strings in internal/core ("Core XPath", "Extended Wadler
// Fragment") are not valid label material.
func FragmentLabel(f core.Fragment) string {
	switch f {
	case core.FragmentCoreXPath:
		return "core_xpath"
	case core.FragmentXPatterns:
		return "xpatterns"
	case core.FragmentWadler:
		return "wadler"
	default:
		return "full_xpath"
	}
}
