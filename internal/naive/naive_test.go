package naive

import (
	"errors"
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func ctxAt(n xmltree.NodeID) semantics.Context {
	return semantics.Context{Node: n, Pos: 1, Size: 1}
}

// TestExponentialRecurrence verifies the Time(|Q|) = |D|^|Q| recurrence
// of Section 2 on the Experiment-1 query family over DOC(2): each
// appended parent::a/b must roughly double the work.
func TestExponentialRecurrence(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/></a>`)
	steps := func(k int) int64 {
		q := "//a/b"
		for i := 0; i < k; i++ {
			q += "/parent::a/b"
		}
		ev := New(d)
		if _, err := ev.Evaluate(xpath.MustParse(q), ctxAt(d.RootID())); err != nil {
			t.Fatal(err)
		}
		return ev.Steps()
	}
	prev := steps(4)
	for k := 5; k <= 9; k++ {
		cur := steps(k)
		ratio := float64(cur) / float64(prev)
		if ratio < 1.7 || ratio > 2.5 {
			t.Errorf("step ratio k=%d: %.2f, want ≈2 (doubling)", k, ratio)
		}
		prev = cur
	}
}

func TestBudgetError(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/></a>`)
	ev := New(d)
	ev.Budget = 100
	q := "//a/b"
	for i := 0; i < 20; i++ {
		q += "/parent::a/b"
	}
	_, err := ev.Evaluate(xpath.MustParse(q), ctxAt(d.RootID()))
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestStepsResetPerEvaluate(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/></a>`)
	ev := New(d)
	if _, err := ev.Evaluate(xpath.MustParse("//b"), ctxAt(d.RootID())); err != nil {
		t.Fatal(err)
	}
	first := ev.Steps()
	if _, err := ev.Evaluate(xpath.MustParse("//b"), ctxAt(d.RootID())); err != nil {
		t.Fatal(err)
	}
	if ev.Steps() != first {
		t.Errorf("steps not reset: %d then %d", first, ev.Steps())
	}
}

func TestShortCircuit(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/></a>`)
	// or short-circuits: right side would be expensive.
	ev := New(d)
	q := "true() or count(//b/ancestor::*//b/ancestor::*//b) > 0"
	v, err := ev.Evaluate(xpath.MustParse(q), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bool {
		t.Error("or result wrong")
	}
	shortSteps := ev.Steps()
	// Same query with false() left side must do more work.
	ev2 := New(d)
	q2 := "false() or count(//b/ancestor::*//b/ancestor::*//b) > 0"
	if _, err := ev2.Evaluate(xpath.MustParse(q2), ctxAt(d.RootID())); err != nil {
		t.Fatal(err)
	}
	if ev2.Steps() <= shortSteps {
		t.Errorf("short circuit did not save work: %d vs %d", shortSteps, ev2.Steps())
	}
}

func TestAbbreviatedEquivalence(t *testing.T) {
	// //a/b and its unabbreviated form must agree.
	d := xmltree.MustParseString(`<a><b/><b/><c><b/></c></a>`)
	ev := New(d)
	v1, err := ev.Evaluate(xpath.MustParse("//b"), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ev.Evaluate(xpath.MustParse("/descendant-or-self::node()/child::b"), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Set.Equal(v2.Set) {
		t.Errorf("//b = %v, unabbreviated = %v", v1.Set, v2.Set)
	}
}
