// Package naive implements the denotational semantics of XPath
// (Definition 5.1, Figure 5 and Table II) by direct recursive descent —
// the strategy the paper attributes to XALAN, XT, Saxon and IE6
// (Sections 2 and 9.2). It re-evaluates every subexpression for every
// context it is asked about, so its worst-case running time is
// exponential in the size of the query (the |D|^|Q| recurrence of
// Section 2). That explosion is the *point* of this engine: it is the
// baseline every experiment in the paper measures against.
//
// The same evaluator becomes polynomial when a data pool (Algorithm 9.1)
// is plugged in: before evaluating (e, c) it consults the pool, and
// after evaluating it stores the result. See package datapool.
package naive

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/evalutil"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ErrBudget is returned when evaluation exceeds the configured step
// budget. Exponential runs are expected with this engine; the budget
// turns "hangs for hours" into a reportable condition in tests and
// benchmarks.
var ErrBudget = errors.New("naive: step budget exhausted")

// Pool is the data-pool interface of Algorithm 9.1: a retrieval and a
// storage procedure for (expression, context) → value triples. The naive
// evaluator calls Lookup before and Store after every expression
// evaluation. A nil Pool reproduces the classic exponential behaviour.
type Pool interface {
	Lookup(e xpath.Expr, c semantics.Context) (semantics.Value, bool)
	Store(e xpath.Expr, c semantics.Context, v semantics.Value)
}

// Evaluator evaluates XPath queries over one document.
type Evaluator struct {
	doc  *xmltree.Document
	pool Pool

	// suffixes caches synthetic Path expressions standing for the step
	// suffixes of a path, so that a data pool can memoize P[[π]](x) per
	// remaining-steps list exactly as Section 9.2 prescribes ("before
	// an evaluation function corresponding to P[[·]] is called with
	// some input (π, x), we first check whether some triple already
	// exists in the data pool").
	suffixes map[suffixKey]xpath.Expr

	// Budget bounds the number of elementary evaluation steps (location
	// step applications and function evaluations); 0 means unlimited.
	Budget int64
	steps  int64

	// cancel is the throttled cancellation checkpoint consulted by
	// bill() on every elementary step; nil (the Evaluate path) never
	// fires. It is what lets an exponential run be abandoned before
	// the Budget — or the heat death of the universe — stops it.
	cancel *evalutil.Canceller
}

type suffixKey struct {
	path *xpath.Path
	idx  int
}

func (ev *Evaluator) suffixExpr(p *xpath.Path, idx int) xpath.Expr {
	if ev.suffixes == nil {
		ev.suffixes = map[suffixKey]xpath.Expr{}
	}
	k := suffixKey{p, idx}
	if e, ok := ev.suffixes[k]; ok {
		return e
	}
	e := &xpath.Path{Steps: p.Steps[idx:]}
	ev.suffixes[k] = e
	return e
}

// New returns a classic (exponential-time) evaluator for the document.
func New(d *xmltree.Document) *Evaluator { return &Evaluator{doc: d} }

// NewWithPool returns an evaluator that memoizes through the given data
// pool, which makes it polynomial-time (Theorem 9.2).
func NewWithPool(d *xmltree.Document, p Pool) *Evaluator {
	return &Evaluator{doc: d, pool: p}
}

// Steps reports the number of elementary evaluation steps performed
// since construction. Experiments use it as a machine-independent cost
// measure.
func (ev *Evaluator) Steps() int64 { return ev.steps }

// Evaluate computes [[e]](c) per Definition 5.1.
func (ev *Evaluator) Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	return ev.EvaluateContext(context.Background(), e, c)
}

// EvaluateContext is Evaluate with cancellation: every elementary
// evaluation step consults a throttled checkpoint, so an exponential
// recursion is abandoned with ctx's error soon after ctx is done
// instead of running to completion (or to its Budget).
func (ev *Evaluator) EvaluateContext(ctx context.Context, e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	ev.cancel = evalutil.NewCanceller(ctx)
	ev.steps = 0
	return ev.eval(e, c)
}

func (ev *Evaluator) bill() error {
	ev.steps++
	if ev.Budget > 0 && ev.steps > ev.Budget {
		return ErrBudget
	}
	return ev.cancel.Check()
}

// eval is the direct functional implementation of [[·]]. With a pool it
// is atomic-evaluation-CVT of Algorithm 9.1; without one it is
// atomic-evaluation.
func (ev *Evaluator) eval(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	if ev.pool != nil {
		if v, ok := ev.pool.Lookup(e, c); ok {
			return v, nil
		}
	}
	v, err := ev.evalUncached(e, c)
	if err != nil {
		return semantics.Value{}, err
	}
	if ev.pool != nil {
		ev.pool.Store(e, c, v)
	}
	return v, nil
}

func (ev *Evaluator) evalUncached(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	if err := ev.bill(); err != nil {
		return semantics.Value{}, err
	}
	switch x := e.(type) {
	case *xpath.Number:
		return semantics.Number(x.Val), nil
	case *xpath.Literal:
		return semantics.String(x.Val), nil
	case *xpath.VarRef:
		return semantics.Value{}, fmt.Errorf("naive: unbound variable $%s (substitute before evaluation)", x.Name)
	case *xpath.Negate:
		v, err := ev.eval(x.X, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.Number(-semantics.ToNumber(ev.doc, v)), nil
	case *xpath.Binary:
		return ev.evalBinary(x, c)
	case *xpath.Call:
		return ev.evalCall(x, c)
	case *xpath.FilterExpr:
		s, err := ev.evalFilterExpr(x, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.NodeSet(s), nil
	case *xpath.Path:
		s, err := ev.evalPath(x, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.NodeSet(s), nil
	default:
		return semantics.Value{}, fmt.Errorf("naive: unknown expression %T", e)
	}
}

func (ev *Evaluator) evalBinary(b *xpath.Binary, c semantics.Context) (semantics.Value, error) {
	// and/or use the short-circuit the W3C prescribes.
	switch b.Op {
	case xpath.OpAnd:
		l, err := ev.eval(b.Left, c)
		if err != nil {
			return semantics.Value{}, err
		}
		if !semantics.ToBoolean(l) {
			return semantics.Boolean(false), nil
		}
		r, err := ev.eval(b.Right, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.Boolean(semantics.ToBoolean(r)), nil
	case xpath.OpOr:
		l, err := ev.eval(b.Left, c)
		if err != nil {
			return semantics.Value{}, err
		}
		if semantics.ToBoolean(l) {
			return semantics.Boolean(true), nil
		}
		r, err := ev.eval(b.Right, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.Boolean(semantics.ToBoolean(r)), nil
	}
	l, err := ev.eval(b.Left, c)
	if err != nil {
		return semantics.Value{}, err
	}
	r, err := ev.eval(b.Right, c)
	if err != nil {
		return semantics.Value{}, err
	}
	switch {
	case b.Op == xpath.OpUnion:
		if l.Kind != xpath.TypeNodeSet || r.Kind != xpath.TypeNodeSet {
			return semantics.Value{}, fmt.Errorf("naive: | on non-node-sets")
		}
		return semantics.NodeSet(l.Set.Union(r.Set)), nil
	case b.Op.IsRelOp():
		return semantics.Boolean(semantics.Compare(ev.doc, b.Op, l, r)), nil
	case b.Op.IsArith():
		return semantics.Number(semantics.Arith(b.Op,
			semantics.ToNumber(ev.doc, l), semantics.ToNumber(ev.doc, r))), nil
	default:
		return semantics.Value{}, fmt.Errorf("naive: unknown operator %v", b.Op)
	}
}

func (ev *Evaluator) evalCall(call *xpath.Call, c semantics.Context) (semantics.Value, error) {
	// Stack buffer for the common arities: CallFunction does not retain
	// its args slice, so this avoids a heap allocation per call on the
	// engine's hottest recursion (count(...) in the Experiment-3
	// family).
	var buf [4]semantics.Value
	var args []semantics.Value
	if len(call.Args) <= len(buf) {
		args = buf[:len(call.Args)]
	} else {
		args = make([]semantics.Value, len(call.Args))
	}
	for i, a := range call.Args {
		v, err := ev.eval(a, c)
		if err != nil {
			return semantics.Value{}, err
		}
		args[i] = v
	}
	return semantics.CallFunction(ev.doc, call.Name, c, args)
}

// evalFilterExpr evaluates a primary expression and filters it with
// predicates; positions are taken in document order (forward).
func (ev *Evaluator) evalFilterExpr(f *xpath.FilterExpr, c semantics.Context) (xmltree.NodeSet, error) {
	prim, err := ev.eval(f.Primary, c)
	if err != nil {
		return nil, err
	}
	if prim.Kind != xpath.TypeNodeSet {
		return nil, fmt.Errorf("naive: predicates on non-node-set %v", prim.Kind)
	}
	s := prim.Set
	for _, pred := range f.Preds {
		s, err = ev.filterForward(s, pred)
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (ev *Evaluator) filterForward(s xmltree.NodeSet, pred xpath.Expr) (xmltree.NodeSet, error) {
	var out xmltree.NodeSet
	for i, y := range s {
		v, err := ev.eval(pred, semantics.Context{Node: y, Pos: i + 1, Size: len(s)})
		if err != nil {
			return nil, err
		}
		if semantics.ToBoolean(v) {
			out = append(out, y)
		}
	}
	return out, nil
}

// evalPath implements P[[π]] of Figure 5 with the recursive
// process-location-step strategy of Section 2: each remaining-step list
// is re-evaluated for every node produced by the step before it. This
// recursion is the engineered source of exponential behaviour.
func (ev *Evaluator) evalPath(p *xpath.Path, c semantics.Context) (xmltree.NodeSet, error) {
	if p.Filter == nil && len(p.Steps) > 0 {
		// Singleton start (the root for absolute paths, the context node
		// otherwise): recurse directly, skipping the start-set and
		// union-buffer allocations.
		x := c.Node
		if p.Absolute {
			x = ev.doc.RootID()
		}
		return ev.stepsFrom(p, 0, x)
	}
	var start xmltree.NodeSet
	switch {
	case p.Filter != nil:
		v, err := ev.eval(p.Filter, c)
		if err != nil {
			return nil, err
		}
		if v.Kind != xpath.TypeNodeSet {
			return nil, fmt.Errorf("naive: path head is not a node set")
		}
		start = v.Set
	case p.Absolute:
		start = xmltree.NodeSet{ev.doc.RootID()}
	default:
		start = xmltree.NodeSet{c.Node}
	}
	if len(p.Steps) == 0 {
		return start, nil
	}
	var out xmltree.NodeSet
	for _, x := range start {
		s, err := ev.stepsFrom(p, 0, x)
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	return out.Normalized(), nil
}

// stepsFrom evaluates the step suffix p.Steps[idx:] from node x,
// consulting the data pool (if any) under a synthetic suffix-path key.
func (ev *Evaluator) stepsFrom(p *xpath.Path, idx int, x xmltree.NodeID) (xmltree.NodeSet, error) {
	if ev.pool == nil {
		return ev.processLocationStep(p, idx, x)
	}
	key := ev.suffixExpr(p, idx)
	c := semantics.Context{Node: x, Pos: 1, Size: 1}
	if v, ok := ev.pool.Lookup(key, c); ok {
		return v.Set, nil
	}
	s, err := ev.processLocationStep(p, idx, x)
	if err != nil {
		return nil, err
	}
	ev.pool.Store(key, c, semantics.NodeSet(s))
	return s, nil
}

// processLocationStep is the pseudocode procedure of Section 2:
//
//	node set S := apply Q.head to node n0;
//	if Q.tail is not empty then
//	    for each node n ∈ S do process-location-step(n, Q.tail)
func (ev *Evaluator) processLocationStep(p *xpath.Path, idx int, x xmltree.NodeID) (xmltree.NodeSet, error) {
	if err := ev.bill(); err != nil {
		return nil, err
	}
	step := p.Steps[idx]
	s := evalutil.StepCandidates(ev.doc, step.Axis, step.Test, x)
	// Predicates with positions over <doc,χ (Figure 5): the set stays in
	// document order and reverse axes get pos = n−i, so the filter runs
	// in place with no reversed copy.
	reverse := step.Axis.IsReverse()
	for _, pred := range step.Preds {
		keep := s[:0]
		n := len(s)
		for i, y := range s {
			pos := i + 1
			if reverse {
				pos = n - i
			}
			v, err := ev.eval(pred, semantics.Context{Node: y, Pos: pos, Size: n})
			if err != nil {
				return nil, err
			}
			if semantics.ToBoolean(v) {
				keep = append(keep, y)
			}
		}
		s = keep
	}
	if idx == len(p.Steps)-1 {
		return s, nil
	}
	// Union of the recursive suffix results, built by appending and
	// normalizing once instead of chained sorted merges.
	var out xmltree.NodeSet
	for _, n := range s {
		sub, err := ev.stepsFrom(p, idx+1, n)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out.Normalized(), nil
}
