package naive

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/semantics"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// TestEvaluateContextCancelsPromptly starts an exponential evaluation
// that would run for hours (the Section 2 recurrence on an Experiment 1
// query, unbudgeted) and asserts cancellation abandons it within the
// checkpoint latency. Before this engine carried checkpoints, the only
// way out was the step Budget. Run under -race in CI.
func TestEvaluateContextCancelsPromptly(t *testing.T) {
	d := workload.Doc(6)
	e := xpath.MustParse(workload.Exp1Query(30))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := New(d).EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the recursion fan out
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation did not return promptly after cancellation")
	}
}

// TestEvaluateContextUncancelled pins down that a context that is never
// cancelled changes nothing: same value, and the step Budget still
// governs.
func TestEvaluateContextUncancelled(t *testing.T) {
	d := workload.Doc(8)
	e := xpath.MustParse("count(//b)")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	v, err := New(d).EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err != nil || v.Num != 8 {
		t.Fatalf("got %v, %v; want 8, nil", v.Num, err)
	}
	ev := New(d)
	ev.Budget = 3
	if _, err := ev.EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}); !errors.Is(err, ErrBudget) {
		t.Fatalf("budget err = %v, want ErrBudget", err)
	}
}
