package xpatterns

import (
	"testing"

	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

var idDoc = xmltree.MustParseString(
	`<lib id="root"><book id="b1"><ref>b2 b3</ref></book>` +
		`<book id="b2"><ref>b1</ref><title>X</title></book>` +
		`<book id="b3"><title>X</title><price>10</price></book></lib>`)

var patternQueries = []string{
	"id('b1')",
	"id('b1 b3')",
	"id('b1')/child::ref",
	"//book[child::title]",
	"//book[child::title = 'X']",
	"//*[. = '10']",
	"//book[child::price = 10]",
	"//book[not(child::ref)]",
	"//book[child::title = 'X' and child::price]",
	"id('b1') | //price",
	"//*[child::ref = 'b1']/child::title",
}

func ctxRoot(d *xmltree.Document) semantics.Context {
	return semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
}

func TestClassifier(t *testing.T) {
	for _, q := range patternQueries {
		if !InFragment(xpath.MustParse(q)) {
			t.Errorf("InFragment(%q) = false, want true", q)
		}
	}
	notPatterns := []string{
		"//book[1]",
		"count(//book)",
		"//book[child::price > 5]", // only = comparisons are unary "=s"
		"//book[child::title = child::ref]",
		"string(//book)",
	}
	for _, q := range notPatterns {
		if InFragment(xpath.MustParse(q)) {
			t.Errorf("InFragment(%q) = true, want false", q)
		}
	}
}

func TestAgainstNaive(t *testing.T) {
	ref := naive.New(idDoc)
	ev := New(idDoc)
	for _, q := range patternQueries {
		e := xpath.MustParse(q)
		want, err := ref.Evaluate(e, ctxRoot(idDoc))
		if err != nil {
			t.Fatalf("naive %q: %v", q, err)
		}
		got, err := ev.Evaluate(e, ctxRoot(idDoc))
		if err != nil {
			t.Errorf("%q: %v", q, err)
			continue
		}
		if !got.Set.Equal(want.Set) {
			t.Errorf("%q: xpatterns = %v, naive = %v", q, got.Set, want.Set)
		}
	}
}

func TestIDOfPath(t *testing.T) {
	// id(π): dereference the string values of the nodes π reaches.
	// id(//ref) derefs "b2 b3" and "b1" → books b1, b2, b3.
	ev := New(idDoc)
	ref := naive.New(idDoc)
	for _, q := range []string{"id(//ref)", "id(//ref)/child::title", "id(id('b1')/child::ref)"} {
		e := xpath.MustParse(q)
		want, err := ref.Evaluate(e, ctxRoot(idDoc))
		if err != nil {
			t.Fatalf("naive %q: %v", q, err)
		}
		got, err := ev.Evaluate(e, ctxRoot(idDoc))
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if !got.Set.Equal(want.Set) {
			t.Errorf("%q: xpatterns = %v, naive = %v", q, got.Set, want.Set)
		}
	}
}

func TestIDHeadInPredicate(t *testing.T) {
	// A predicate containing an id(…) head path: books that id('b1')'s
	// refs point to.
	q := "//book[id('b1')]" // existential: true iff id('b1') non-empty
	e := xpath.MustParse(q)
	ev := New(idDoc)
	ref := naive.New(idDoc)
	want, err := ref.Evaluate(e, ctxRoot(idDoc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Evaluate(e, ctxRoot(idDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Set.Equal(want.Set) {
		t.Errorf("%q: xpatterns = %v, naive = %v", q, got.Set, want.Set)
	}
}

func TestUnaryPredicateSets(t *testing.T) {
	d := xmltree.MustParseString(`<r><a/><b/><a/><c><a/><a/></c></r>`)
	ev := New(d)
	name := func(id xmltree.NodeID) string { return d.Name(id) }

	foa, err := ev.FirstOfAny()
	if err != nil {
		t.Fatal(err)
	}
	// First children: r (of root), a (first child of r), first a in c.
	if len(foa) != 3 {
		t.Errorf("FirstOfAny = %d nodes, want 3", len(foa))
	}
	loa, err := ev.LastOfAny()
	if err != nil {
		t.Fatal(err)
	}
	// Last children: r, c (last child of r), last a in c.
	if len(loa) != 3 {
		t.Errorf("LastOfAny = %d nodes, want 3", len(loa))
	}

	fot, err := ev.FirstOfType()
	if err != nil {
		t.Fatal(err)
	}
	// Per sibling list, first of each tag: r; a(first),b,c under r;
	// first a under c → 5.
	if len(fot) != 5 {
		var ns []string
		for _, id := range fot {
			ns = append(ns, name(id))
		}
		t.Errorf("FirstOfType = %v (%d), want 5", ns, len(fot))
	}
	lot, err := ev.LastOfType()
	if err != nil {
		t.Fatal(err)
	}
	// r; b, second a, c under r; second a under c → 5.
	if len(lot) != 5 {
		t.Errorf("LastOfType = %d, want 5", len(lot))
	}
	// first-of-type ∩ last-of-type = types occurring once per list.
	both := fot.Intersect(lot)
	for _, id := range both {
		if name(id) == "a" && d.Parent(id) == d.DocumentElement() {
			t.Errorf("a under r occurs twice; cannot be both first and last of type")
		}
	}
}

func TestRejectsOutOfFragment(t *testing.T) {
	ev := New(idDoc)
	if _, err := ev.Evaluate(xpath.MustParse("count(//book)"), ctxRoot(idDoc)); err == nil {
		t.Error("expected error for count()")
	}
	if _, err := ev.Evaluate(xpath.MustParse("//book[child::price > 5]"), ctxRoot(idDoc)); err == nil {
		t.Error("expected error for > comparison")
	}
}
