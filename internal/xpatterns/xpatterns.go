// Package xpatterns implements the XPatterns language of Section 10.2:
// the smallest language subsuming Core XPath and the XSLT Patterns of
// the December 1998 draft (minus first-of-type/last-of-type, which XPath
// cannot express) that is syntactically contained in XPath. XPatterns
// extends Core XPath with:
//
//   - the "id" axis (Theorem 10.7), realized through the document's
//     precomputed ref relation, in both directions;
//   - the "=s" unary predicates of Table VI: comparisons of a path's
//     target with a constant string or number, propagated backwards from
//     the precomputed extension {y | strval(y) = s};
//   - the remaining Table VI unary predicates (@n, @*, text(),
//     comment(), pi(n), first-of-any, last-of-any) — the attribute and
//     kind tests arrive naturally through the step grammar, and
//     first-of-any/last-of-any (plus the XSLT'98-only first-of-type and
//     last-of-type) are exposed as precomputed node sets.
//
// Everything remains O(|D|·|Q|) (Theorem 10.8).
package xpatterns

import (
	"context"
	"fmt"

	"repro/internal/axes"
	"repro/internal/evalutil"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Evaluator evaluates XPatterns queries over one document.
type Evaluator struct {
	doc *xmltree.Document

	// strvalSets caches {y | strval(y) = s} per constant.
	strvalSets map[string]xmltree.NodeSet

	// cancel is the throttled cancellation checkpoint billed once per
	// O(|D|) set operation or document scan; nil (the Evaluate path)
	// never fires.
	cancel *evalutil.Canceller
}

// New returns an XPatterns evaluator for the document.
func New(d *xmltree.Document) *Evaluator {
	return &Evaluator{doc: d, strvalSets: map[string]xmltree.NodeSet{}}
}

// InFragment reports whether a normalized query is an XPatterns query.
func InFragment(e xpath.Expr) bool { return isPattern(e) }

func isPattern(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Path:
		if x.Filter != nil && !isIDHead(x.Filter) {
			return false
		}
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				if !isPatternPred(p) {
					return false
				}
			}
		}
		return true
	case *xpath.Binary:
		return x.Op == xpath.OpUnion && isPattern(x.Left) && isPattern(x.Right)
	case *xpath.Call:
		// A bare id('c') or id(π) query.
		return isIDHead(e)
	default:
		return false
	}
}

// isIDHead recognizes id(c) and id(π) heads, possibly nested
// (id(id(…))), where the innermost argument is a constant string or an
// XPatterns path.
func isIDHead(e xpath.Expr) bool {
	c, ok := e.(*xpath.Call)
	if !ok || c.Name != "id" || len(c.Args) != 1 {
		return false
	}
	switch a := c.Args[0].(type) {
	case *xpath.Literal:
		return true
	case *xpath.Call:
		return isIDHead(a)
	default:
		return isPattern(a)
	}
}

func isPatternPred(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Binary:
		switch x.Op {
		case xpath.OpAnd, xpath.OpOr:
			return isPatternPred(x.Left) && isPatternPred(x.Right)
		case xpath.OpEq:
			// The "=s" unary predicate: path = constant (either side).
			return isEqS(x.Left, x.Right) || isEqS(x.Right, x.Left)
		default:
			return false
		}
	case *xpath.Call:
		switch x.Name {
		case "not", "boolean":
			if isPatternPred(x.Args[0]) {
				return true
			}
			return isPattern(x.Args[0])
		case "true", "false",
			"first-of-any", "last-of-any", "first-of-type", "last-of-type":
			return true
		}
		return false
	case *xpath.Path:
		return isPattern(e)
	default:
		return false
	}
}

func isEqS(pathSide, constSide xpath.Expr) bool {
	switch constSide.(type) {
	case *xpath.Literal, *xpath.Number:
	default:
		return false
	}
	return isPattern(pathSide)
}

// Evaluate computes the query for a single context node.
func (ev *Evaluator) Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	return ev.EvaluateContext(context.Background(), e, c)
}

// EvaluateContext is Evaluate with cancellation: every O(|D|) set
// operation and document scan bills a throttled checkpoint, so the
// evaluation is abandoned with ctx's error promptly once ctx is done.
func (ev *Evaluator) EvaluateContext(ctx context.Context, e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	ev.cancel = evalutil.NewCanceller(ctx)
	s, err := ev.EvaluateSet(e, xmltree.NodeSet{c.Node})
	if err != nil {
		return semantics.Value{}, err
	}
	return semantics.NodeSet(s), nil
}

// checkpoint bills one whole-document operation against the
// cancellation checkpoint.
func (ev *Evaluator) checkpoint() error {
	return ev.cancel.CheckN(ev.doc.Len())
}

// EvaluateSet computes the forward semantics S→ extended with the id
// axis for a set of context nodes.
func (ev *Evaluator) EvaluateSet(e xpath.Expr, n0 xmltree.NodeSet) (xmltree.NodeSet, error) {
	switch x := e.(type) {
	case *xpath.Binary:
		if x.Op != xpath.OpUnion {
			return nil, fmt.Errorf("xpatterns: not an XPatterns query: %s", e)
		}
		l, err := ev.EvaluateSet(x.Left, n0)
		if err != nil {
			return nil, err
		}
		r, err := ev.EvaluateSet(x.Right, n0)
		if err != nil {
			return nil, err
		}
		return l.Union(r), nil
	case *xpath.Call:
		return ev.evalIDHead(x, n0)
	case *xpath.Path:
		cur := n0
		if x.Filter != nil {
			head, err := ev.evalIDHead(x.Filter, n0)
			if err != nil {
				return nil, err
			}
			cur = head
		} else if x.Absolute {
			cur = xmltree.NodeSet{ev.doc.RootID()}
		}
		for _, step := range x.Steps {
			if err := ev.checkpoint(); err != nil {
				return nil, err
			}
			cur = evalutil.StepCandidatesSet(ev.doc, step.Axis, step.Test, cur)
			for _, p := range step.Preds {
				e1, err := ev.e1(p)
				if err != nil {
					return nil, err
				}
				cur = cur.Intersect(e1)
			}
		}
		return cur, nil
	default:
		return nil, fmt.Errorf("xpatterns: not an XPatterns query: %s", e)
	}
}

// evalIDHead evaluates an id(…) head: π1/id(π2)/π3 is treated as
// π1/π2/id/π3 (Lemma 10.6), and id('c') starts from the constant's
// extension.
func (ev *Evaluator) evalIDHead(e xpath.Expr, n0 xmltree.NodeSet) (xmltree.NodeSet, error) {
	c, ok := e.(*xpath.Call)
	if !ok || c.Name != "id" {
		return nil, fmt.Errorf("xpatterns: unsupported path head %s", e)
	}
	switch a := c.Args[0].(type) {
	case *xpath.Literal:
		return ev.doc.DerefIDs(a.Val), nil
	case *xpath.Call:
		inner, err := ev.evalIDHead(a, n0)
		if err != nil {
			return nil, err
		}
		return axes.EvalID(ev.doc, inner), nil
	default:
		inner, err := ev.EvaluateSet(a, n0)
		if err != nil {
			return nil, err
		}
		return axes.EvalID(ev.doc, inner), nil
	}
}

// dom materializes the full node set — an O(|D|) fill billed against
// the cancellation checkpoint like every other whole-document
// operation.
func (ev *Evaluator) dom() (xmltree.NodeSet, error) {
	if err := ev.checkpoint(); err != nil {
		return nil, err
	}
	s := make(xmltree.NodeSet, ev.doc.Len())
	for i := range s {
		s[i] = xmltree.NodeID(i)
	}
	return s, nil
}

// e1 computes the extension of an XPatterns predicate.
func (ev *Evaluator) e1(e xpath.Expr) (xmltree.NodeSet, error) {
	if err := ev.checkpoint(); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *xpath.Binary:
		switch x.Op {
		case xpath.OpAnd, xpath.OpOr:
			l, err := ev.e1(x.Left)
			if err != nil {
				return nil, err
			}
			r, err := ev.e1(x.Right)
			if err != nil {
				return nil, err
			}
			if x.Op == xpath.OpAnd {
				return l.Intersect(r), nil
			}
			return l.Union(r), nil
		case xpath.OpEq:
			if isEqS(x.Left, x.Right) {
				return ev.eqS(x.Left, x.Right)
			}
			if isEqS(x.Right, x.Left) {
				return ev.eqS(x.Right, x.Left)
			}
			return nil, fmt.Errorf("xpatterns: comparison %s not in fragment", e)
		default:
			return nil, fmt.Errorf("xpatterns: operator %v not in fragment", x.Op)
		}
	case *xpath.Call:
		switch x.Name {
		case "not":
			inner, err := ev.e1(x.Args[0])
			if err != nil {
				return nil, err
			}
			d, err := ev.dom()
			if err != nil {
				return nil, err
			}
			return d.Minus(inner), nil
		case "boolean":
			return ev.e1(x.Args[0])
		case "true":
			return ev.dom()
		case "false":
			return nil, nil
		case "id":
			// Existential id(…) head inside a predicate.
			d, err := ev.dom()
			if err != nil {
				return nil, err
			}
			return ev.sBackIDHead(x, d)
		default:
			s, ok, err := ev.unaryPredicateSet(x.Name)
			if err != nil {
				return nil, err
			}
			if ok {
				return s, nil
			}
			return nil, fmt.Errorf("xpatterns: function %s not in fragment", x.Name)
		}
	case *xpath.Path:
		return ev.sBack(x, nil)
	default:
		return nil, fmt.Errorf("xpatterns: predicate %s not in fragment", e)
	}
}

// eqS computes the extension of [π = c]: the nodes from which π reaches
// a node whose string value equals the constant.
func (ev *Evaluator) eqS(pathSide, constSide xpath.Expr) (xmltree.NodeSet, error) {
	var target xmltree.NodeSet
	var err error
	switch c := constSide.(type) {
	case *xpath.Literal:
		target, err = ev.strvalEquals(c.Val)
	case *xpath.Number:
		target, err = ev.strvalEqualsNumber(c.Val)
	default:
		return nil, fmt.Errorf("xpatterns: non-constant comparison %s", constSide)
	}
	if err != nil {
		return nil, err
	}
	p, ok := pathSide.(*xpath.Path)
	if !ok {
		return nil, fmt.Errorf("xpatterns: comparison lhs %s not a path", pathSide)
	}
	return ev.sBack(p, target)
}

// strvalEquals computes (and caches) {y | strval(y) = s}: the "=s" unary
// predicate of Table VI, "computed using string search in the document".
// The scan is O(|D|) and billed against the cancellation checkpoint.
func (ev *Evaluator) strvalEquals(s string) (xmltree.NodeSet, error) {
	if set, ok := ev.strvalSets[s]; ok {
		return set, nil
	}
	if err := ev.checkpoint(); err != nil {
		return nil, err
	}
	var out xmltree.NodeSet
	for i := 0; i < ev.doc.Len(); i++ {
		if ev.doc.StringValue(xmltree.NodeID(i)) == s {
			out = append(out, xmltree.NodeID(i))
		}
	}
	ev.strvalSets[s] = out
	return out, nil
}

func (ev *Evaluator) strvalEqualsNumber(v float64) (xmltree.NodeSet, error) {
	if err := ev.checkpoint(); err != nil {
		return nil, err
	}
	var out xmltree.NodeSet
	for i := 0; i < ev.doc.Len(); i++ {
		if semantics.StringToNumber(ev.doc.StringValue(xmltree.NodeID(i))) == v {
			out = append(out, xmltree.NodeID(i))
		}
	}
	return out, nil
}

// sBack propagates backwards through a path. With a nil target it
// computes S←[[π]] (existence); with a target set it computes the nodes
// from which π reaches a target node — the generalization needed by the
// "=s" predicates.
func (ev *Evaluator) sBack(p *xpath.Path, target xmltree.NodeSet) (xmltree.NodeSet, error) {
	cur := target
	if cur == nil {
		d, err := ev.dom()
		if err != nil {
			return nil, err
		}
		cur = d
	}
	for i := len(p.Steps) - 1; i >= 0; i-- {
		if err := ev.checkpoint(); err != nil {
			return nil, err
		}
		step := p.Steps[i]
		s := evalutil.FilterTest(ev.doc, step.Axis, step.Test, cur)
		for _, pr := range step.Preds {
			e1, err := ev.e1(pr)
			if err != nil {
				return nil, err
			}
			s = s.Intersect(e1)
		}
		cur = axes.EvalInverse(ev.doc, step.Axis, s)
	}
	if p.Filter != nil {
		return ev.sBackIDHead(p.Filter, cur)
	}
	if p.Absolute {
		if cur.Contains(ev.doc.RootID()) {
			return ev.dom()
		}
		return nil, nil
	}
	return cur, nil
}

// sBackIDHead propagates a backward set through an id(…) head: for
// id('c') the result is context-independent (dom or ∅); for id(π) the
// propagation continues through id⁻¹ and then π.
func (ev *Evaluator) sBackIDHead(e xpath.Expr, cur xmltree.NodeSet) (xmltree.NodeSet, error) {
	c, ok := e.(*xpath.Call)
	if !ok || c.Name != "id" {
		return nil, fmt.Errorf("xpatterns: unsupported path head %s", e)
	}
	switch a := c.Args[0].(type) {
	case *xpath.Literal:
		if !xmltree.NodeSet(ev.doc.DerefIDs(a.Val)).Intersect(cur).IsEmpty() {
			return ev.dom()
		}
		return nil, nil
	case *xpath.Call:
		back := axes.EvalIDInverse(ev.doc, cur)
		return ev.sBackIDHead(a, back)
	case *xpath.Path:
		back := axes.EvalIDInverse(ev.doc, cur)
		return ev.sBack(a, back)
	default:
		return nil, fmt.Errorf("xpatterns: unsupported id argument %s", a)
	}
}

// ------------------------------------------------------------------
// XSLT'98 unary predicates (Table VI / Theorem 10.8)
// ------------------------------------------------------------------

// FirstOfAny returns {y ∈ dom | y has no preceding sibling}: the
// first-of-any unary predicate. Attribute and namespace nodes are not
// part of the sibling order here.
func (ev *Evaluator) FirstOfAny() (xmltree.NodeSet, error) {
	return ev.siblingBoundary(true, nil)
}

// LastOfAny returns {x ∈ dom | x has no following sibling}.
func (ev *Evaluator) LastOfAny() (xmltree.NodeSet, error) {
	return ev.siblingBoundary(false, nil)
}

// FirstOfType returns the first-of-type() predicate of Theorem 10.8:
// elements with no preceding sibling of the same name. Computable in
// O(|D|·|Σ|); this implementation is O(|D|) by scanning sibling lists.
func (ev *Evaluator) FirstOfType() (xmltree.NodeSet, error) {
	seen := map[string]bool{}
	return ev.siblingBoundary(true, seen)
}

// LastOfType returns elements with no following sibling of the same
// name.
func (ev *Evaluator) LastOfType() (xmltree.NodeSet, error) {
	seen := map[string]bool{}
	return ev.siblingBoundary(false, seen)
}

// siblingBoundary scans every sibling list once, considering element
// children only (the '98 draft's patterns address elements). With
// byType nil it marks the first (or last) element child of each parent;
// with a map it marks the first (or last) element child per tag name.
// Total work is O(|D|), realizing the Theorem 10.8 precomputation, and
// is billed as one whole-document operation.
func (ev *Evaluator) siblingBoundary(first bool, byType map[string]bool) (xmltree.NodeSet, error) {
	if err := ev.checkpoint(); err != nil {
		return nil, err
	}
	var out []xmltree.NodeID
	for i := 0; i < ev.doc.Len(); i++ {
		p := xmltree.NodeID(i)
		ty := ev.doc.Type(p)
		if ty != xmltree.Element && ty != xmltree.Root {
			continue
		}
		var kids []xmltree.NodeID
		for _, k := range ev.doc.Children(p) {
			if ev.doc.Type(k) == xmltree.Element {
				kids = append(kids, k)
			}
		}
		if len(kids) == 0 {
			continue
		}
		if byType == nil {
			if first {
				out = append(out, kids[0])
			} else {
				out = append(out, kids[len(kids)-1])
			}
			continue
		}
		// Per-type boundaries: scan forward (or backward) remembering
		// which names were already seen among these siblings.
		for k := range byType {
			delete(byType, k)
		}
		idxs := make([]int, len(kids))
		for j := range kids {
			idxs[j] = j
		}
		if !first {
			for l, r := 0, len(idxs)-1; l < r; l, r = l+1, r-1 {
				idxs[l], idxs[r] = idxs[r], idxs[l]
			}
		}
		for _, j := range idxs {
			k := kids[j]
			name := ev.doc.Name(k)
			if !byType[name] {
				byType[name] = true
				out = append(out, k)
			}
		}
	}
	return xmltree.NewNodeSet(out...), nil
}

// unaryPredicateSet resolves an XSLT'98 predicate function name to its
// precomputed extension.
func (ev *Evaluator) unaryPredicateSet(name string) (xmltree.NodeSet, bool, error) {
	var s xmltree.NodeSet
	var err error
	switch name {
	case "first-of-any":
		s, err = ev.FirstOfAny()
	case "last-of-any":
		s, err = ev.LastOfAny()
	case "first-of-type":
		s, err = ev.FirstOfType()
	case "last-of-type":
		s, err = ev.LastOfType()
	default:
		return nil, false, nil
	}
	return s, true, err
}
