package xpatterns

import (
	"context"
	"fmt"

	"repro/internal/evalutil"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// MatchSet computes the nodes matching an XPatterns pattern in the
// XSLT-template sense: n matches π iff some context node selects n via
// π. Runs in linear time by one forward pass over all of dom.
func (ev *Evaluator) MatchSet(e xpath.Expr) (xmltree.NodeSet, error) {
	return ev.MatchSetContext(context.Background(), e)
}

// MatchSetContext is MatchSet with cancellation: the dom fill and every
// O(|D|) operation of the forward pass bill the throttled checkpoint,
// so a match over a large document abandons promptly with ctx's error
// once ctx is done.
func (ev *Evaluator) MatchSetContext(ctx context.Context, e xpath.Expr) (xmltree.NodeSet, error) {
	if !InFragment(e) {
		return nil, fmt.Errorf("xpatterns: pattern %s not in the XPatterns fragment", e)
	}
	ev.cancel = evalutil.NewCanceller(ctx)
	d, err := ev.dom()
	if err != nil {
		return nil, err
	}
	return ev.EvaluateSet(e, d)
}

// Matches reports whether one node matches the pattern.
func (ev *Evaluator) Matches(e xpath.Expr, n xmltree.NodeID) (bool, error) {
	s, err := ev.MatchSet(e)
	if err != nil {
		return false, err
	}
	return s.Contains(n), nil
}

// MatchesContext is Matches with cancellation.
func (ev *Evaluator) MatchesContext(ctx context.Context, e xpath.Expr, n xmltree.NodeID) (bool, error) {
	s, err := ev.MatchSetContext(ctx, e)
	if err != nil {
		return false, err
	}
	return s.Contains(n), nil
}
