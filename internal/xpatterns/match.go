package xpatterns

import (
	"fmt"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// MatchSet computes the nodes matching an XPatterns pattern in the
// XSLT-template sense: n matches π iff some context node selects n via
// π. Runs in linear time by one forward pass over all of dom.
func (ev *Evaluator) MatchSet(e xpath.Expr) (xmltree.NodeSet, error) {
	if !InFragment(e) {
		return nil, fmt.Errorf("xpatterns: pattern %s not in the XPatterns fragment", e)
	}
	return ev.EvaluateSet(e, ev.dom())
}

// Matches reports whether one node matches the pattern.
func (ev *Evaluator) Matches(e xpath.Expr, n xmltree.NodeID) (bool, error) {
	s, err := ev.MatchSet(e)
	if err != nil {
		return false, err
	}
	return s.Contains(n), nil
}
