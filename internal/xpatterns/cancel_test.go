package xpatterns

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/semantics"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// TestEvaluateContextCancelsPromptly cancels mid-evaluation of a long
// chain of O(|D|) axis applications (a legitimate XPatterns query —
// the fragment subsumes Core XPath paths) and asserts the evaluator
// returns context.Canceled within the checkpoint latency instead of
// finishing the multi-second run. Run under -race in CI.
func TestEvaluateContextCancelsPromptly(t *testing.T) {
	d := workload.Doc(30000)
	q := "//*" + strings.Repeat("/following::*/preceding::*", 200)
	e := xpath.MustParse(q)
	if !InFragment(e) {
		t.Fatal("chain query left the XPatterns fragment")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := New(d).EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the step chain get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation did not return promptly after cancellation")
	}
}

// TestMatchSetContextCancelled pins the regression the cancelcheck
// analyzer guards against: the dom fill and the "=s" string-search
// scan bill the throttled checkpoint, so on a document past the
// checkpoint granularity (1024 nodes) an already-cancelled context
// observably stops the match instead of scanning to completion.
func TestMatchSetContextCancelled(t *testing.T) {
	d := workload.Doc(5000) // > one checkpoint interval of billed units
	e := xpath.MustParse("//b[. = 'nope']")
	if !InFragment(e) {
		t.Fatal("query left the XPatterns fragment")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first O(|D|) operation
	if _, err := New(d).MatchSetContext(ctx, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMatchSetContextUncancelled pins down that a live context leaves
// the match semantics untouched.
func TestMatchSetContextUncancelled(t *testing.T) {
	d := workload.DocPrime(8)
	e := xpath.MustParse("//b[. = 'c']")
	want, err := New(d).MatchSet(e)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got, err := New(d).MatchSetContext(ctx, e)
	if err != nil || !got.Equal(want) {
		t.Fatalf("MatchSetContext = %v, %v; want %v, nil", got, err, want)
	}
}

// TestEvaluateContextUncancelled pins down that a context that is never
// cancelled changes nothing about the result, including through the
// id-axis and "=s" machinery unique to this fragment.
func TestEvaluateContextUncancelled(t *testing.T) {
	d := workload.DocPrime(8)
	e := xpath.MustParse("//b[. = 'c']")
	if !InFragment(e) {
		t.Fatal("query left the XPatterns fragment")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	v, err := New(d).EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err != nil || len(v.Set) != 8 {
		t.Fatalf("got %d nodes, %v; want 8, nil", len(v.Set), err)
	}
}
