package xpatterns

import (
	"testing"

	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/topdown"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestXSLT98PredicatesInQueries evaluates the extension predicates of
// the December 1998 XSLT draft through the query syntax, comparing the
// linear-time XPatterns evaluator with the general engines (which
// resolve the functions per node via CallFunction).
func TestXSLT98PredicatesInQueries(t *testing.T) {
	d := xmltree.MustParseString(
		`<r><a/>text<b/><a/><c><a/>more<a/></c></r>`)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	queries := []string{
		"//a[first-of-type()]",
		"//a[last-of-type()]",
		"//*[first-of-any()]",
		"//*[last-of-any()]",
		"//a[first-of-type() and last-of-type()]",
		"//c/a[not(first-of-any())]",
	}
	xp := New(d)
	nv := naive.New(d)
	td := topdown.New(d)
	for _, q := range queries {
		e := xpath.MustParse(q)
		if !InFragment(e) {
			t.Errorf("InFragment(%q) = false", q)
			continue
		}
		want, err := nv.Evaluate(e, ctx)
		if err != nil {
			t.Fatalf("naive(%q): %v", q, err)
		}
		gotTD, err := td.Evaluate(e, ctx)
		if err != nil {
			t.Fatalf("topdown(%q): %v", q, err)
		}
		if !gotTD.Equal(want) {
			t.Errorf("topdown(%q) = %+v, naive = %+v", q, gotTD, want)
		}
		got, err := xp.Evaluate(e, ctx)
		if err != nil {
			t.Errorf("xpatterns(%q): %v", q, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("xpatterns(%q) = %+v, naive = %+v", q, got, want)
		}
	}
}

// TestXSLT98Pinned pins concrete answers.
func TestXSLT98Pinned(t *testing.T) {
	d := xmltree.MustParseString(`<r><a/><b/><a/><c><a/><a/></c></r>`)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	ev := New(d)
	sel := func(q string) xmltree.NodeSet {
		t.Helper()
		v, err := ev.Evaluate(xpath.MustParse(q), ctx)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return v.Set
	}
	// first-of-type a: the first a under r and the first a under c.
	if got := sel("//a[first-of-type()]"); len(got) != 2 {
		t.Errorf("//a[first-of-type()] = %v, want 2 nodes", got)
	}
	// b is both first and last of its type.
	if got := sel("//b[first-of-type() and last-of-type()]"); len(got) != 1 {
		t.Errorf("b both-boundaries = %v", got)
	}
	// last-of-any under r is c; under c it is the second a.
	got := sel("//*[last-of-any()]")
	names := map[string]int{}
	for _, n := range got {
		names[d.Name(n)]++
	}
	if names["c"] != 1 || names["a"] != 1 || names["r"] != 1 {
		t.Errorf("last-of-any = %v (names %v)", got, names)
	}
	// Text siblings are ignored: in <x><a/>t<b/></x> the a is still
	// first-of-any and b last-of-any.
	d2 := xmltree.MustParseString(`<x><a/>t<b/></x>`)
	ev2 := New(d2)
	v, err := ev2.Evaluate(xpath.MustParse("//a[first-of-any()]"),
		semantics.Context{Node: d2.RootID(), Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 1 {
		t.Errorf("a with text sibling should still be first-of-any")
	}
}
