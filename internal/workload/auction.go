package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
)

// Auction builds an XMark-flavoured auction document with n items, a
// person directory, and open auctions whose bidders cross-reference
// persons by ID. It provides the deeper, more heterogeneous structure
// the flat experiment documents lack, for integration tests and the
// realistic examples. Deterministic per seed.
func Auction(seed int64, n int) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder()
	b.StartElement("site")

	regions := []string{"africa", "asia", "europe"}
	b.StartElement("regions")
	for ri, region := range regions {
		b.StartElement(region)
		for i := 0; i < n/len(regions); i++ {
			id := fmt.Sprintf("item%d_%d", ri, i)
			b.StartElement("item")
			b.Attribute("id", id)
			b.StartElement("name")
			b.Text(fmt.Sprintf("Item %s", id))
			b.EndElement()
			b.StartElement("payment")
			b.Text([]string{"cash", "creditcard"}[r.Intn(2)])
			b.EndElement()
			b.StartElement("quantity")
			b.Text(fmt.Sprintf("%d", 1+r.Intn(5)))
			b.EndElement()
			if r.Intn(3) == 0 {
				b.StartElement("shipping")
				b.Text("worldwide")
				b.EndElement()
			}
			b.EndElement()
		}
		b.EndElement()
	}
	b.EndElement()

	people := n / 2
	if people < 4 {
		people = 4
	}
	b.StartElement("people")
	for i := 0; i < people; i++ {
		b.StartElement("person")
		b.Attribute("id", fmt.Sprintf("person%d", i))
		b.StartElement("name")
		b.Text(fmt.Sprintf("Person %d", i))
		b.EndElement()
		if r.Intn(2) == 0 {
			b.StartElement("emailaddress")
			b.Text(fmt.Sprintf("p%d@example.org", i))
			b.EndElement()
		}
		if r.Intn(4) == 0 {
			b.StartElement("creditcard")
			b.Text(fmt.Sprintf("%04d %04d", r.Intn(10000), r.Intn(10000)))
			b.EndElement()
		}
		b.EndElement()
	}
	b.EndElement()

	b.StartElement("open_auctions")
	for i := 0; i < n/2; i++ {
		b.StartElement("open_auction")
		b.Attribute("id", fmt.Sprintf("auction%d", i))
		bids := 1 + r.Intn(4)
		price := 10 + r.Intn(90)
		for j := 0; j < bids; j++ {
			b.StartElement("bidder")
			b.StartElement("personref")
			b.Text(fmt.Sprintf("person%d", r.Intn(people)))
			b.EndElement()
			price += r.Intn(20)
			b.StartElement("increase")
			b.Text(fmt.Sprintf("%d", price))
			b.EndElement()
			b.EndElement()
		}
		b.StartElement("current")
		b.Text(fmt.Sprintf("%d", price))
		b.EndElement()
		b.StartElement("itemref")
		ri := r.Intn(len(regions))
		b.Text(fmt.Sprintf("item%d_%d", ri, r.Intn(maxInt(1, n/len(regions)))))
		b.EndElement()
		b.EndElement()
	}
	b.EndElement()

	b.EndElement()
	return b.MustDone()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
