package workload

import (
	"fmt"
	"testing"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestDoc(t *testing.T) {
	d := Doc(4)
	// Root + a + 4 b = 6 nodes (Example 4.1).
	if d.Len() != 6 {
		t.Errorf("DOC(4) nodes = %d, want 6", d.Len())
	}
	a := d.DocumentElement()
	if d.Name(a) != "a" || len(d.Children(a)) != 4 {
		t.Errorf("DOC(4) structure wrong")
	}
	if d.Len() != Doc(4).Len() {
		t.Error("generator not deterministic")
	}
}

func TestDocPrime(t *testing.T) {
	d := DocPrime(3)
	a := d.DocumentElement()
	for _, b := range d.Children(a) {
		if d.StringValue(b) != "c" {
			t.Errorf("b content = %q, want c", d.StringValue(b))
		}
	}
	// Root + a + 3 b + 3 text = 8.
	if d.Len() != 8 {
		t.Errorf("DOC'(3) nodes = %d, want 8", d.Len())
	}
}

func TestDeepDoc(t *testing.T) {
	d := DeepDoc(5)
	if d.Len() != 6 { // root + 5 b
		t.Errorf("DeepDoc(5) nodes = %d, want 6", d.Len())
	}
	// Must be a non-branching chain.
	n := d.DocumentElement()
	depth := 0
	for n != -1 {
		depth++
		kids := d.Children(n)
		if len(kids) > 1 {
			t.Fatalf("node has %d children; want chain", len(kids))
		}
		if len(kids) == 0 {
			break
		}
		n = kids[0]
	}
	if depth != 5 {
		t.Errorf("chain depth = %d, want 5", depth)
	}
}

func TestQueryFamiliesParseAndGrow(t *testing.T) {
	gens := map[string]func(int) string{
		"exp1":  Exp1Query,
		"exp2":  Exp2Query,
		"exp3":  Exp3Query,
		"exp5a": Exp5FollowingQuery,
		"exp5b": Exp5DescendantQuery,
	}
	for name, gen := range gens {
		prev := 0
		for k := 1; k <= 10; k++ {
			q := gen(k)
			if _, err := xpath.Parse(q); err != nil {
				t.Fatalf("%s(%d) = %q does not parse: %v", name, k, q, err)
			}
			if len(q) <= prev {
				t.Errorf("%s(%d) did not grow", name, k)
			}
			prev = len(q)
		}
	}
	// Exp4 queries parse too; size is O(i).
	for _, i := range []int{0, 1, 5, 20} {
		q := Exp4Query(i)
		if _, err := xpath.Parse(q); err != nil {
			t.Fatalf("Exp4Query(%d) = %q: %v", i, q, err)
		}
	}
}

func TestExp1QueryShape(t *testing.T) {
	if Exp1Query(1) != "//a/b" {
		t.Errorf("Exp1Query(1) = %q", Exp1Query(1))
	}
	q3 := Exp1Query(3)
	if q3 != "//a/b/parent::a/b/parent::a/b" {
		t.Errorf("Exp1Query(3) = %q", q3)
	}
}

func TestExp4QueryShape(t *testing.T) {
	// The paper's example of size 2:
	// //a//b[ancestor::a//b[ancestor::a//b]/ancestor::a//b]/ancestor::a//b
	want := "//a//b[ancestor::a//b[ancestor::a//b]/ancestor::a//b]/ancestor::a//b"
	if got := Exp4Query(2); got != want {
		t.Errorf("Exp4Query(2) =\n  %s\nwant\n  %s", got, want)
	}
}

func TestExp5Queries(t *testing.T) {
	if got := Exp5FollowingQuery(3); got != "count(//b/following::b/following::b)" {
		t.Errorf("Exp5FollowingQuery(3) = %q", got)
	}
	if got := Exp5DescendantQuery(3); got != "count(//b//b//b)" {
		t.Errorf("Exp5DescendantQuery(3) = %q", got)
	}
}

func TestCatalog(t *testing.T) {
	d := Catalog(30)
	// Every product id resolves.
	for i := 0; i < 30; i++ {
		if d.IDOf(fmt.Sprintf("p%d", i)) == xmltree.NilNode {
			t.Errorf("catalog id p%d missing", i)
		}
	}
	// Accessory references resolve to existing products.
	found := 0
	for i := 0; i < d.Len(); i++ {
		n := xmltree.NodeID(i)
		if d.Name(n) == "accessory" {
			found++
			ref := d.StringValue(n)
			if d.IDOf(ref) == xmltree.NilNode {
				t.Errorf("dangling accessory reference %q", ref)
			}
		}
	}
	if found == 0 {
		t.Error("catalog has no accessory elements")
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	d1 := RandomTree(7, 50, 3, 4)
	d2 := RandomTree(7, 50, 3, 4)
	if d1.Len() != d2.Len() {
		t.Errorf("RandomTree not deterministic: %d vs %d", d1.Len(), d2.Len())
	}
	if d1.XMLString() != d2.XMLString() {
		t.Error("RandomTree content differs across runs")
	}
	d3 := RandomTree(8, 50, 3, 4)
	if d1.XMLString() == d3.XMLString() {
		t.Error("different seeds produced identical trees")
	}
}
