// Package workload generates the synthetic documents and query families
// of the paper's experimental section (Section 2 and Section 9.3), plus
// realistic documents for the examples and ablation benchmarks.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/xmltree"
)

// Doc builds DOC(i) of Section 2: ⟨a⟩ ⟨b/⟩ × i ⟨/a⟩, whose tree contains
// i+1 element nodes (plus the root).
func Doc(i int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.StartElement("a")
	for k := 0; k < i; k++ {
		b.StartElement("b")
		b.EndElement()
	}
	b.EndElement()
	return b.MustDone()
}

// DocPrime builds DOC′(i) of Experiment 2: like DOC(i) but every b
// element contains the text "c".
func DocPrime(i int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.StartElement("a")
	for k := 0; k < i; k++ {
		b.StartElement("b")
		b.Text("c")
		b.EndElement()
	}
	b.EndElement()
	return b.MustDone()
}

// DeepDoc builds the non-branching path of i b-nodes used in Experiment
// 5(b): ⟨b⟩…⟨b⟩⟨/b⟩…⟨/b⟩.
func DeepDoc(i int) *xmltree.Document {
	b := xmltree.NewBuilder()
	for k := 0; k < i; k++ {
		b.StartElement("b")
	}
	for k := 0; k < i; k++ {
		b.EndElement()
	}
	return b.MustDone()
}

// Exp1Query builds the k-th Experiment 1 query: the first query is
// //a/b, and each following query appends /parent::a/b.
func Exp1Query(k int) string {
	var sb strings.Builder
	sb.WriteString("//a/b")
	for i := 1; i < k; i++ {
		sb.WriteString("/parent::a/b")
	}
	return sb.String()
}

// Exp2Query builds the k-th Experiment 2 query, nesting paths and
// relational operators:
//
//	//*[parent::a/child::* = 'c']
//	//*[parent::a/child::*[parent::a/child::* = 'c'] = 'c']
//	…
func Exp2Query(k int) string {
	inner := "parent::a/child::*"
	for i := 1; i < k; i++ {
		inner = "parent::a/child::*[" + inner + " = 'c']"
	}
	return "//*[" + inner + " = 'c']"
}

// Exp3Query builds the k-th Experiment 3 query, nesting paths and
// arithmetic through count():
//
//	//a/b[count(parent::a/b) > 1]
//	//a/b[count(parent::a/b[count(parent::a/b) > 1]) > 1]
//	…
func Exp3Query(k int) string {
	pred := "count(parent::a/b) > 1"
	for i := 1; i < k; i++ {
		pred = "count(parent::a/b[" + pred + "]) > 1"
	}
	return "//a/b[" + pred + "]"
}

// Exp4Query builds the fixed query of Experiment 4, ‘//a’+q(i)+‘//b’
// with
//
//	q(i) = //b[ancestor::a + q(i−1) + //b]/ancestor::a   (i > 0)
//	q(0) = ""
//
// The paper uses i = 20.
func Exp4Query(i int) string {
	q := ""
	for k := 0; k < i; k++ {
		q = "//b[ancestor::a" + q + "//b]/ancestor::a"
	}
	return "//a" + q + "//b"
}

// Exp5FollowingQuery builds the Experiment 5(a) query of size k:
// count(//b/following::b/…/following::b) with k−1 following steps.
func Exp5FollowingQuery(k int) string {
	var sb strings.Builder
	sb.WriteString("count(//b")
	for i := 1; i < k; i++ {
		sb.WriteString("/following::b")
	}
	sb.WriteString(")")
	return sb.String()
}

// Exp5DescendantQuery builds the Experiment 5(b) query of size k:
// count(//b//b…//b) with k b-steps.
func Exp5DescendantQuery(k int) string {
	var sb strings.Builder
	sb.WriteString("count(")
	for i := 0; i < k; i++ {
		sb.WriteString("//b")
	}
	sb.WriteString(")")
	return sb.String()
}

// Catalog builds a realistic product-catalog document with n products,
// cross-referenced by ID (used by examples and the ablation benches).
// Products cycle through three categories; every third product
// references another product as an accessory.
func Catalog(n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	b.StartElement("catalog")
	b.Attribute("id", "cat")
	cats := []string{"audio", "video", "storage"}
	for i := 0; i < n; i++ {
		b.StartElement("product")
		b.Attribute("id", fmt.Sprintf("p%d", i))
		b.Attribute("category", cats[i%3])
		b.StartElement("name")
		b.Text(fmt.Sprintf("Product %d", i))
		b.EndElement()
		b.StartElement("price")
		b.Text(fmt.Sprintf("%d", 10+(i*7)%90))
		b.EndElement()
		if i%3 == 2 {
			b.StartElement("accessory")
			b.Text(fmt.Sprintf("p%d", (i+1)%n))
			b.EndElement()
		}
		if i%5 == 0 {
			b.StartElement("discontinued")
			b.EndElement()
		}
		b.EndElement()
	}
	b.EndElement()
	return b.MustDone()
}

// RandomTree builds a pseudo-random document of roughly n element nodes
// with the given tag alphabet size and maximum depth, deterministic per
// seed. Useful for property tests.
func RandomTree(seed int64, n, tags, maxDepth int) *xmltree.Document {
	r := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder()
	b.StartElement("root")
	remaining := n
	var build func(depth int)
	build = func(depth int) {
		for remaining > 0 {
			if r.Intn(4) == 0 {
				return
			}
			remaining--
			b.StartElement(string(rune('a' + r.Intn(tags))))
			if r.Intn(3) == 0 {
				b.Text(fmt.Sprintf("%d", r.Intn(100)))
			}
			if depth < maxDepth {
				build(depth + 1)
			}
			b.EndElement()
		}
	}
	build(0)
	b.EndElement()
	return b.MustDone()
}
