package bench

import (
	"fmt"
	"time"

	"repro/internal/corexpath"
	"repro/internal/mincontext"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Exp1 reproduces Experiment 1 (Figure 2, left): exponential query
// complexity of XALAN and XT on DOC(2) with antagonist-axis queries
// //a/b(/parent::a/b)^k. The naive engine models XALAN/XT; the top-down
// engine shows the paper's fix on the same workload.
func Exp1(cfg Config) []Series {
	d := workload.Doc(2)
	ks := intsUpTo(25)
	series := []Series{
		sweep(naiveRunner{d}, d, workload.Exp1Query, ks, cfg.cap(), "naive (models XALAN/XT)"),
		sweep(topdownRunner{d}, d, workload.Exp1Query, ks, cfg.cap(), "topdown (ours)"),
	}
	FprintSeries(cfg.out(), "Experiment 1: //a/b(/parent::a/b)^k on DOC(2)", series)
	return series
}

// Exp2 reproduces Experiment 2 (Figure 2, right): exponential query
// complexity of Saxon on DOC′(i), i ∈ {2, 3, 10, 200}, with nested
// path/comparison predicates.
func Exp2(cfg Config) []Series {
	var series []Series
	for _, i := range []int{2, 3, 10, 200} {
		d := workload.DocPrime(i)
		series = append(series, sweep(naiveRunner{d}, d, workload.Exp2Query,
			intsUpTo(30), cfg.cap(), fmt.Sprintf("naive doc %d (models Saxon)", i)))
	}
	d := workload.DocPrime(200)
	series = append(series, sweep(topdownRunner{d}, d, workload.Exp2Query,
		intsUpTo(30), cfg.cap(), "topdown doc 200 (ours)"))
	FprintSeries(cfg.out(), "Experiment 2: nested //*[parent::a/child::* = 'c'] on DOC'(i)", series)
	return series
}

// Exp3 reproduces Experiment 3 (Figure 3, left): exponential query
// complexity of IE6 on DOC(i) with nested count() predicates.
func Exp3(cfg Config) []Series {
	var series []Series
	for _, i := range []int{2, 3, 10, 200} {
		d := workload.Doc(i)
		series = append(series, sweep(naiveRunner{d}, d, workload.Exp3Query,
			intsUpTo(30), cfg.cap(), fmt.Sprintf("naive doc %d (models IE6)", i)))
	}
	d := workload.Doc(200)
	series = append(series, sweep(topdownRunner{d}, d, workload.Exp3Query,
		intsUpTo(30), cfg.cap(), "topdown doc 200 (ours)"))
	FprintSeries(cfg.out(), "Experiment 3: nested //a/b[count(parent::a/b) > 1] on DOC(i)", series)
	return series
}

// Exp4 reproduces Experiment 4 (Figure 3, right): data complexity for
// the fixed query //a + q(20) + //b, which IE6 evaluates in quadratic
// time. We cannot run IE6; instead the harness brackets its curve from
// both sides. The query family lies in Core XPath, so our Auto engine
// dispatches to the linear-time algebra (Section 10.1) and scales to
// the paper's 50 000-node granularity; the general-purpose top-down
// engine is polynomial but super-quadratic on this family. The harness
// reports the timings plus first and second differences f′ and f″ for
// the linear engine (for IE6's quadratic curve, f″ was the constant).
func Exp4(cfg Config) []Series {
	query := workload.Exp4Query(20)
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	// Linear-time Core XPath engine at the paper's granularity
	// (5000-node steps up to 50 000).
	base := int(5000 * scale)
	if base < 50 {
		base = 50
	}
	var bigDocs []*xmltree.Document
	for n := base; n <= 10*base; n += base {
		bigDocs = append(bigDocs, workload.Doc(n))
	}
	series := []Series{
		docSweep(func(d *xmltree.Document) engineRunner { return cxRunner{d, cfg.Parallelism} },
			bigDocs, query, cfg.cap()*10, "corexpath (linear, ours)"),
	}
	// Top-down engine on a smaller sweep (it is super-quadratic here).
	smallBase := base / 10
	if smallBase < 25 {
		smallBase = 25
	}
	var smallDocs []*xmltree.Document
	for n := smallBase; n <= 8*smallBase; n += smallBase {
		smallDocs = append(smallDocs, workload.Doc(n))
	}
	series = append(series,
		docSweep(func(d *xmltree.Document) engineRunner { return topdownRunner{d} },
			smallDocs, query, cfg.cap(), "topdown (general-purpose)"))
	FprintDocSeries(cfg.out(), "Experiment 4: fixed //a+q(20)+//b, document sweep (f)", series)
	// First and second differences for the linear engine.
	w := cfg.out()
	pts := series[0].Points
	fmt.Fprintf(w, "%10s %12s %12s %12s\n", "|D|", "f (ms)", "f'", "f''")
	var prev, prevD float64
	for i, p := range pts {
		d1, d2 := 0.0, 0.0
		if i > 0 {
			d1 = p.Millis - prev
		}
		if i > 1 {
			d2 = d1 - prevD
		}
		fmt.Fprintf(w, "%10d %12.2f %12.2f %12.2f\n", p.DocSize, p.Millis, d1, d2)
		if i > 0 {
			prevD = d1
		}
		prev = p.Millis
	}
	fmt.Fprintln(w)
	return series
}

// Exp5 reproduces Experiment 5 (Figure 4): exponential behaviour with
// forward axes only. Part (a) chains following::b on flat DOC(i); part
// (b) chains //b on deep non-branching documents.
func Exp5(cfg Config, descendant bool) []Series {
	var series []Series
	for _, i := range []int{20, 25, 30, 40, 50} {
		var d *xmltree.Document
		var gen func(int) string
		var label string
		if descendant {
			d = workload.DeepDoc(i)
			gen = workload.Exp5DescendantQuery
			label = fmt.Sprintf("naive doc %d (descendant)", i)
		} else {
			d = workload.Doc(i)
			gen = workload.Exp5FollowingQuery
			label = fmt.Sprintf("naive doc %d (following)", i)
		}
		series = append(series, sweep(naiveRunner{d}, d, gen, intsUpTo(20), cfg.cap(), label))
	}
	// Our engine on the largest document for contrast.
	if descendant {
		d := workload.DeepDoc(50)
		series = append(series, sweep(topdownRunner{d}, d, workload.Exp5DescendantQuery,
			intsUpTo(20), cfg.cap(), "topdown doc 50 (ours)"))
		FprintSeries(cfg.out(), "Experiment 5(b): count(//b//b…//b) on deep paths", series)
	} else {
		d := workload.Doc(50)
		series = append(series, sweep(topdownRunner{d}, d, workload.Exp5FollowingQuery,
			intsUpTo(20), cfg.cap(), "topdown doc 50 (ours)"))
		FprintSeries(cfg.out(), "Experiment 5(a): count(//b/following::b…) on DOC(i)", series)
	}
	return series
}

// Table5 reproduces Table V (and Figure 12): "Xalan classic" versus
// "Xalan + data pool" on the Experiment 3 queries over DOC(10) and
// DOC(200). The naive engine is the classic column; the same engine
// with the Section 9 data pool is the fixed column.
func Table5(cfg Config) []Series {
	ks := intsUpTo(8)
	var series []Series
	for _, i := range []int{10, 200} {
		d := workload.Doc(i)
		series = append(series,
			sweep(naiveRunner{d}, d, workload.Exp3Query, ks, cfg.cap(),
				fmt.Sprintf("classic doc %d", i)),
			sweep(datapoolRunner{d}, d, workload.Exp3Query, ks, cfg.cap(),
				fmt.Sprintf("data pool doc %d", i)))
	}
	FprintSeries(cfg.out(), "Table V: naive (Xalan classic) vs data pool, Experiment-3 queries", series)
	return series
}

// Table7 reproduces Table VII: "IE6" (naive model) versus "XMLTaskforce
// XPath" (the top-down engine) on the Experiment 2 queries, across
// document sizes 10–2000 and query sizes up to 50. The expected shape:
// the naive column explodes past |Q| ≈ 3 on large documents; the
// top-down column grows linearly in |Q| and quadratically in |D|.
func Table7(cfg Config) []Series {
	ks := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50}
	var series []Series
	for _, i := range []int{10, 20, 200} {
		d := workload.DocPrime(i)
		series = append(series, sweep(naiveRunner{d}, d, workload.Exp2Query,
			intsUpTo(8), cfg.cap(), fmt.Sprintf("IE6-model doc %d", i)))
	}
	for _, i := range []int{10, 20, 200, 500, 1000, 2000} {
		d := workload.DocPrime(i)
		series = append(series, sweep(topdownRunner{d}, d, workload.Exp2Query,
			ks, cfg.cap()*5, fmt.Sprintf("XMLTaskforce doc %d", i)))
	}
	FprintSeries(cfg.out(), "Table VII: naive (IE6 model) vs top-down (XMLTaskforce), Experiment-2 queries", series)
	return series
}

// Ablation compares all engines on three representative queries — one
// per fragment of Figure 1 — over a realistic catalog document. It
// regenerates the design-choice comparison DESIGN.md calls out:
// specialized fragment evaluators versus the general algorithms.
func Ablation(cfg Config) []Series {
	d := workload.Catalog(300)
	queries := map[string]string{
		"core-xpath": "//product[child::discontinued]/child::name",
		"wadler":     "//product[child::price = 10 and position() != last()]",
		"full-xpath": "//product[count(child::*) > 2]/child::name",
	}
	var series []Series
	w := cfg.out()
	fmt.Fprintf(w, "== Ablation: engines × fragments on Catalog(300), |D|=%d ==\n", d.Len())
	fmt.Fprintf(w, "%-12s %-15s %12s\n", "query", "engine", "time")
	for qname, q := range queries {
		e := xpath.MustParse(q)
		runners := []struct {
			name string
			r    engineRunner
		}{
			{"naive", naiveRunner{d}},
			{"datapool", datapoolRunner{d}},
			{"topdown", topdownRunner{d}},
			{"mincontext", mcRunner{d}},
			{"optmincontext", optmincontextRunner{d, cfg.Parallelism}},
		}
		if corexpath.InFragment(e) {
			runners = append(runners, struct {
				name string
				r    engineRunner
			}{"corexpath", cxRunner{d, cfg.Parallelism}})
		}
		s := Series{Label: qname}
		for _, rn := range runners {
			dur, _, _, err := rn.r.run(e, int64(5e8))
			if err != nil {
				fmt.Fprintf(w, "%-12s %-15s %12s\n", qname, rn.name, "error: "+err.Error())
				continue
			}
			fmt.Fprintf(w, "%-12s %-15s %12.3fms\n", qname, rn.name, float64(dur.Microseconds())/1000)
			s.Points = append(s.Points, Point{Millis: float64(dur.Microseconds()) / 1000, DocSize: d.Len()})
		}
		series = append(series, s)
	}
	fmt.Fprintln(w)
	return series
}

type mcRunner struct{ d *xmltree.Document }

func (r mcRunner) run(e xpath.Expr, _ int64) (time.Duration, int64, bool, error) {
	ev := mincontext.New(r.d)
	start := time.Now()
	_, err := ev.Evaluate(e, rootCtx(r.d))
	return time.Since(start), 0, false, err
}

type cxRunner struct {
	d   *xmltree.Document
	par int
}

func (r cxRunner) run(e xpath.Expr, _ int64) (time.Duration, int64, bool, error) {
	ev := corexpath.New(r.d)
	ev.Parallelism = r.par
	start := time.Now()
	_, err := ev.Evaluate(e, rootCtx(r.d))
	return time.Since(start), 0, false, err
}
