package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// plannerFamily is one query/document pair from the paper's experiment
// families, plus the fixed strategies feasible on it (topdown is
// super-quadratic on the Experiment-4 document sweep, so it sits out
// that family just as it does in Exp4 itself).
type plannerFamily struct {
	name  string
	doc   *xmltree.Document
	query string
	fixed []core.Strategy
}

// PlannerAblation compares planned Auto — the adaptive strategy planner
// warmed by its own latency observations — against each feasible fixed
// strategy on one representative query from the Experiment 1, 3 and 4
// families. It is the human-readable twin of the BenchmarkPlanner*
// families whose benchjson artifacts the CI gate machine-checks: after
// warmup the planned row should track the best fixed row within noise,
// because the planner converges on whichever engine its observations
// rank fastest for the shape class.
func PlannerAblation(cfg Config) []Series {
	families := []plannerFamily{
		{"exp1", workload.Doc(100), workload.Exp1Query(8),
			[]core.Strategy{core.TopDown, core.MinContext, core.OptMinContext}},
		{"exp3", workload.Doc(50), workload.Exp3Query(2),
			[]core.Strategy{core.TopDown, core.MinContext, core.OptMinContext}},
		{"exp4", workload.Doc(500), workload.Exp4Query(20),
			[]core.Strategy{core.MinContext, core.OptMinContext, core.CoreXPath}},
	}
	const warmup, iters = 6, 12
	w := cfg.out()
	fmt.Fprintf(w, "== Planner ablation: planned auto (%s) vs fixed strategies (warmup %d, best of %d) ==\n",
		cfg.Planner, warmup, iters)
	fmt.Fprintf(w, "%-8s %10s %-15s %12s\n", "family", "|D|", "strategy", "time")
	var series []Series
	for _, f := range families {
		s := Series{Label: f.name}
		add := func(name string, e *engine.Engine) {
			ms, err := plannerMeasure(e.NewSession(f.doc), f.query, warmup, iters)
			if err != nil {
				fmt.Fprintf(w, "%-8s %10d %-15s %12s\n", f.name, f.doc.Len(), name, "error: "+err.Error())
				return
			}
			fmt.Fprintf(w, "%-8s %10d %-15s %12.3fms\n", f.name, f.doc.Len(), name, ms)
			s.Points = append(s.Points, Point{Millis: ms, DocSize: f.doc.Len()})
		}
		add("planned", engine.New(engine.Options{
			Strategy: core.Auto, Planner: cfg.Planner,
			Parallelism: sessionParallelism(cfg.Parallelism),
		}))
		for _, st := range f.fixed {
			add(st.String(), engine.New(engine.Options{
				Strategy:    st,
				Parallelism: sessionParallelism(cfg.Parallelism),
			}))
		}
		series = append(series, s)
	}
	fmt.Fprintln(w)
	return series
}

// sessionParallelism maps the harness Parallelism knob (0/1 =
// sequential) onto engine.Options.Parallelism (-1 = sequential).
func sessionParallelism(p int) int {
	if p <= 1 {
		return -1
	}
	return p
}

// plannerMeasure runs warmup iterations (compilation, and for planned
// sessions the observation feedback loop) and then reports the best of
// iters measured evaluations in milliseconds. Best-of matches how the
// Go benchmark gate samples: it asks what the engine can do once
// steady, not how noisy the path there was.
func plannerMeasure(sess *engine.Session, src string, warmup, iters int) (float64, error) {
	for i := 0; i < warmup; i++ {
		if res := sess.Do(src); res.Err != nil {
			return 0, res.Err
		}
	}
	best := time.Duration(-1)
	for i := 0; i < iters; i++ {
		start := time.Now()
		res := sess.Do(src)
		if res.Err != nil {
			return 0, res.Err
		}
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	return float64(best.Microseconds()) / 1000, nil
}
