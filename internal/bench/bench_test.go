package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quick returns a configuration that keeps test runs fast.
func quick() Config {
	return Config{Cap: 150 * time.Millisecond, Scale: 0.05}
}

func TestExp1Shape(t *testing.T) {
	series := Exp1(quick())
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	nv, td := series[0], series[1]
	// The naive curve must grow roughly exponentially (each
	// parent::a/b doubles the work on DOC(2)).
	if r := GrowthRatio(nv); r < 1.5 {
		t.Errorf("naive growth ratio = %.2f, want ≥ 1.5 (exponential)", r)
	}
	// The top-down curve must stay flat-ish: bounded growth per step.
	if r := GrowthRatio(td); r > 1.4 {
		t.Errorf("topdown growth ratio = %.2f, want ≈1 (polynomial)", r)
	}
	// The naive series must have been truncated by the cap well before
	// k=25; the top-down series must have completed.
	if len(nv.Points) >= 25 {
		t.Errorf("naive series ran to k=%d without hitting the cap", len(nv.Points))
	}
	if len(td.Points) != 25 {
		t.Errorf("topdown series stopped early at %d points", len(td.Points))
	}
}

func TestExp5Shapes(t *testing.T) {
	following := Exp5(quick(), false)
	if len(following) == 0 {
		t.Fatal("no series")
	}
	// Every naive series on the larger documents should be truncated.
	last := following[len(following)-2] // naive doc 50
	if !strings.Contains(last.Label, "naive") {
		t.Fatalf("unexpected series order: %v", last.Label)
	}
	if len(last.Points) >= 20 {
		t.Errorf("naive doc-50 series ran to completion; expected cap")
	}
	ours := following[len(following)-1]
	if !strings.Contains(ours.Label, "topdown") {
		t.Fatalf("missing topdown series")
	}
	if len(ours.Points) != 20 {
		t.Errorf("topdown series truncated at %d", len(ours.Points))
	}

	descendant := Exp5(quick(), true)
	lastD := descendant[len(descendant)-2]
	if len(lastD.Points) >= 20 {
		t.Errorf("naive descendant series ran to completion; expected cap")
	}
}

func TestTable5Shape(t *testing.T) {
	series := Table5(quick())
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	classic10, pool10, classic200, pool200 := series[0], series[1], series[2], series[3]
	// Data pool must reach |Q|=8 on both documents.
	if len(pool10.Points) != 8 || len(pool200.Points) != 8 {
		t.Errorf("data pool truncated: %d / %d points", len(pool10.Points), len(pool200.Points))
	}
	for _, p := range append(pool10.Points, pool200.Points...) {
		if p.TimedOut {
			t.Error("data pool point timed out")
		}
	}
	// Classic on doc 200 must be truncated very early (the paper shows
	// 1343s at |Q|=3).
	if len(classic200.Points) > 5 {
		t.Errorf("classic doc 200 reached |Q|=%d; expected early truncation", len(classic200.Points))
	}
	_ = classic10
}

func TestExp4Shape(t *testing.T) {
	cfg := quick()
	cfg.Scale = 0.2 // docs 1000..10000 for the linear engine
	series := Exp4(cfg)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	lin := series[0].Points
	if len(lin) < 6 {
		t.Fatalf("linear engine truncated at %d points", len(lin))
	}
	// Linear data complexity: doubling the document should roughly
	// double the time (allow generous noise, stay well under
	// quadratic's 4×).
	last := lin[len(lin)-1]
	var half *Point
	for i := range lin {
		if 2*lin[i].DocSize >= last.DocSize-2 && 2*lin[i].DocSize <= last.DocSize+2 {
			half = &lin[i]
		}
	}
	if half == nil {
		t.Fatal("no half-size point")
	}
	ratio := last.Millis / half.Millis
	if ratio > 3.4 {
		t.Errorf("corexpath doubling ratio = %.2f; expected near-linear (<3.4)", ratio)
	}
}

func TestPrinters(t *testing.T) {
	var buf bytes.Buffer
	s := []Series{{Label: "x", Points: []Point{
		{QuerySize: 1, DocSize: 3, Millis: 1.5},
		{QuerySize: 2, DocSize: 3, TimedOut: true},
	}}}
	FprintSeries(&buf, "t", s)
	out := buf.String()
	if !strings.Contains(out, "1.50ms") || !strings.Contains(out, "-") {
		t.Errorf("FprintSeries output:\n%s", out)
	}
	buf.Reset()
	FprintDocSeries(&buf, "t", s)
	if !strings.Contains(buf.String(), "3") {
		t.Errorf("FprintDocSeries output:\n%s", buf.String())
	}
}

func TestAblationRuns(t *testing.T) {
	var buf bytes.Buffer
	cfg := quick()
	cfg.Out = &buf
	series := Ablation(cfg)
	if len(series) != 3 {
		t.Fatalf("ablation series = %d", len(series))
	}
	if !strings.Contains(buf.String(), "corexpath") {
		t.Error("ablation output missing corexpath row")
	}
}
