// Package bench is the harness that regenerates every table and figure
// of the paper's evaluation (Experiments 1–5, Table V / Figure 12, and
// Table VII), plus ablation comparisons across all engines in this
// repository. Absolute times differ from the 2002 hardware, so the
// harness reports raw measurements and the *shape* checks (exponential
// versus polynomial growth, quadratic data complexity) that the
// reproduction is judged on.
//
// The naive engine is exponential by design; per-point wall-clock caps
// are enforced through its step budget, calibrated from the points
// already measured in the same series. A capped point is reported like
// the '-' entries of Table V and terminates its series.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/datapool"
	"repro/internal/naive"
	"repro/internal/planner"
	"repro/internal/semantics"
	"repro/internal/topdown"
	"repro/internal/wadler"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Point is one measurement.
type Point struct {
	QuerySize int
	DocSize   int
	Millis    float64
	Steps     int64 // naive-engine step count, 0 for other engines
	TimedOut  bool
}

// Series is a labeled curve (one line of a figure, one column of a
// table).
type Series struct {
	Label  string
	Points []Point
}

// Config controls a harness run.
type Config struct {
	// Cap is the wall-clock budget per measurement; a point expected
	// to exceed it is reported as timed out ('-' in the paper's
	// tables) and ends its series. Default 2s.
	Cap time.Duration
	// Scale shrinks the sweep ranges for quick runs (1 = paper-sized
	// ranges where feasible; 0 defaults to 1).
	Scale float64
	// Parallelism is the worker budget handed to the engines with
	// multicore kernels (corexpath, optmincontext); 0 or 1 keeps every
	// measurement sequential.
	Parallelism int
	// Planner selects the planner mode for the PlannerAblation
	// experiment's planned-Auto contestant. The zero value Off means
	// Auto resolves by the static fragment switch.
	Planner planner.Mode
	// Out receives the printed tables; nil discards them.
	Out io.Writer
}

// FprintConfig prints the run configuration header. Measurements are
// meaningless without the machine context, so the header always
// includes GOMAXPROCS alongside the knobs of this run.
func (c Config) FprintConfig(w io.Writer) {
	fmt.Fprintf(w, "== config ==\n")
	fmt.Fprintf(w, "gomaxprocs: %d\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "parallel:   %d\n", c.Parallelism)
	fmt.Fprintf(w, "cap:        %s\n", c.cap())
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	fmt.Fprintf(w, "scale:      %g\n", scale)
	fmt.Fprintln(w)
}

func (c Config) cap() time.Duration {
	if c.Cap <= 0 {
		return 2 * time.Second
	}
	return c.Cap
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// rootCtx builds the initial context for a document.
func rootCtx(d *xmltree.Document) semantics.Context {
	return semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
}

// engineRunner abstracts "evaluate this query once, report cost".
type engineRunner interface {
	// run evaluates the expression; it reports duration, optional step
	// count, and whether the step budget was exhausted.
	run(e xpath.Expr, budget int64) (time.Duration, int64, bool, error)
}

type naiveRunner struct{ d *xmltree.Document }

func (r naiveRunner) run(e xpath.Expr, budget int64) (time.Duration, int64, bool, error) {
	ev := naive.New(r.d)
	ev.Budget = budget
	start := time.Now()
	_, err := ev.Evaluate(e, rootCtx(r.d))
	dur := time.Since(start)
	if err == naive.ErrBudget {
		return dur, ev.Steps(), true, nil
	}
	return dur, ev.Steps(), false, err
}

type datapoolRunner struct{ d *xmltree.Document }

func (r datapoolRunner) run(e xpath.Expr, budget int64) (time.Duration, int64, bool, error) {
	ev, _ := datapool.NewEvaluator(r.d)
	ev.Budget = budget
	start := time.Now()
	_, err := ev.Evaluate(e, rootCtx(r.d))
	dur := time.Since(start)
	if err == naive.ErrBudget {
		return dur, ev.Steps(), true, nil
	}
	return dur, ev.Steps(), false, err
}

type topdownRunner struct{ d *xmltree.Document }

func (r topdownRunner) run(e xpath.Expr, _ int64) (time.Duration, int64, bool, error) {
	ev := topdown.New(r.d)
	start := time.Now()
	_, err := ev.Evaluate(e, rootCtx(r.d))
	return time.Since(start), 0, false, err
}

type optmincontextRunner struct {
	d   *xmltree.Document
	par int
}

func (r optmincontextRunner) run(e xpath.Expr, _ int64) (time.Duration, int64, bool, error) {
	ev := wadler.New(r.d)
	ev.Parallelism = r.par
	start := time.Now()
	_, err := ev.Evaluate(e, rootCtx(r.d))
	return time.Since(start), 0, false, err
}

// sweep measures one engine over a query-size sweep on one document.
// For step-budgeted engines the budget for point k is extrapolated from
// the measured step rate so that no point exceeds ~1.5× the cap.
func sweep(r engineRunner, d *xmltree.Document, queryGen func(k int) string, ks []int, cap time.Duration, label string) Series {
	s := Series{Label: label}
	var rate float64 = 5e6 // steps/sec initial guess; recalibrated per point
	for _, k := range ks {
		e, err := xpath.Parse(queryGen(k))
		if err != nil {
			panic(fmt.Sprintf("bench: bad generated query: %v", err))
		}
		budget := int64(rate * cap.Seconds() * 1.5)
		dur, steps, capped, err := r.run(e, budget)
		if err != nil {
			panic(fmt.Sprintf("bench: %s k=%d: %v", label, k, err))
		}
		p := Point{QuerySize: k, DocSize: d.Len(), Millis: float64(dur.Microseconds()) / 1000, Steps: steps, TimedOut: capped}
		s.Points = append(s.Points, p)
		if capped || dur > cap {
			// The next point would be strictly worse; stop the series
			// like the paper's '-' entries.
			break
		}
		if steps > 0 && dur > time.Millisecond {
			rate = float64(steps) / dur.Seconds()
		}
	}
	return s
}

// docSweep measures one engine over a document-size sweep with a fixed
// query. mk builds the engine runner for each document.
func docSweep(mk func(*xmltree.Document) engineRunner, docs []*xmltree.Document, query string, cap time.Duration, label string) Series {
	s := Series{Label: label}
	e, err := xpath.Parse(query)
	if err != nil {
		panic(fmt.Sprintf("bench: bad query: %v", err))
	}
	for _, d := range docs {
		dur, _, capped, err := mk(d).run(e, 0)
		if err != nil {
			panic(fmt.Sprintf("bench: %s |D|=%d: %v", label, d.Len(), err))
		}
		s.Points = append(s.Points, Point{DocSize: d.Len(), Millis: float64(dur.Microseconds()) / 1000, TimedOut: capped})
		if capped || dur > cap {
			break
		}
	}
	return s
}

// FprintSeries renders series as an aligned text table: rows = query
// size, one column per series.
func FprintSeries(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "== %s ==\n", title)
	// Collect row keys.
	keys := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			keys[p.QuerySize] = true
		}
	}
	var rows []int
	for k := range keys {
		rows = append(rows, k)
	}
	sortInts(rows)
	fmt.Fprintf(w, "%8s", "|Q|")
	for _, s := range series {
		fmt.Fprintf(w, " %22s", s.Label)
	}
	fmt.Fprintln(w)
	for _, k := range rows {
		fmt.Fprintf(w, "%8d", k)
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.QuerySize == k {
					if p.TimedOut {
						cell = "-"
					} else {
						cell = fmt.Sprintf("%.2fms", p.Millis)
					}
				}
			}
			fmt.Fprintf(w, " %22s", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// FprintDocSeries renders document-size sweeps: rows = doc size.
func FprintDocSeries(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "== %s ==\n", title)
	keys := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			keys[p.DocSize] = true
		}
	}
	var rows []int
	for k := range keys {
		rows = append(rows, k)
	}
	sortInts(rows)
	fmt.Fprintf(w, "%10s", "|D|")
	for _, s := range series {
		fmt.Fprintf(w, " %22s", s.Label)
	}
	fmt.Fprintln(w)
	for _, k := range rows {
		fmt.Fprintf(w, "%10d", k)
		for _, s := range series {
			cell := ""
			for _, p := range s.Points {
				if p.DocSize == k {
					if p.TimedOut {
						cell = "-"
					} else {
						cell = fmt.Sprintf("%.2fms", p.Millis)
					}
				}
			}
			fmt.Fprintf(w, " %22s", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// GrowthRatio summarizes a series' tail growth: the mean ratio of
// consecutive point costs. Exponential query complexity shows as a
// ratio near the document's branching factor; polynomial behaviour
// shows as a ratio near 1.
func GrowthRatio(s Series) float64 {
	var ratios []float64
	for i := 1; i < len(s.Points); i++ {
		a, b := s.Points[i-1], s.Points[i]
		if a.TimedOut || b.TimedOut {
			break
		}
		ca, cb := cost(a), cost(b)
		if ca > 0 {
			ratios = append(ratios, cb/ca)
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	// Use the latter half: early points are dominated by fixed overhead
	// (the paper's "sharp bend" from JVM startup has the same effect).
	tail := ratios[len(ratios)/2:]
	sum := 0.0
	for _, r := range tail {
		sum += r
	}
	return sum / float64(len(tail))
}

func cost(p Point) float64 {
	if p.Steps > 0 {
		return float64(p.Steps)
	}
	return p.Millis
}

func intsUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func joinLabels(ss []Series) string {
	var ls []string
	for _, s := range ss {
		ls = append(ls, s.Label)
	}
	return strings.Join(ls, ", ")
}
