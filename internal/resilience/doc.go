// Package resilience is the cluster's failure-handling substrate:
// the small, dependency-free primitives the router and node layers
// consult whenever they re-issue work against a peer, plus the fault
// injector the chaos harness drives them with.
//
// The pieces, and the failure mode each one bounds:
//
//   - Backoff: jittered exponential delays between retry attempts, so
//     a fleet of routers retrying against a struggling peer spreads
//     its load instead of synchronizing into waves.
//
//   - Budget: a token-bucket retry budget. Every first attempt
//     deposits a fraction of a token, every retry spends a whole one,
//     so retries are bounded to a fixed fraction of live traffic and
//     cannot amplify an outage into a retry storm.
//
//   - Breaker: a per-peer circuit breaker (closed → open → half-open).
//     Consecutive failures open it; while open, calls fail fast
//     without touching the peer; after a cooldown the next calls
//     probe, and a success closes it again.
//
//   - WithAttemptsLeft / CarveAttempt: per-attempt deadline carving.
//     A caller deadline of D with k attempts remaining gives each
//     attempt min(flat timeout, remaining/k), so a tight client
//     deadline is honored across the whole retry chain instead of the
//     first attempt eating all of it.
//
//   - Faults: a seeded, deterministic fault injector — connection
//     refusals, latency spikes, injected 5xx answers, and mid-stream
//     cuts, matched per path/method/peer with a probability and a
//     trigger budget. It mounts either as a server middleware
//     (Faults.Handler, the -fault-spec hook in xpathserve and
//     xpathrouter) or as a client transport wrapper (Faults.Transport)
//     and is what scripts/chaos_smoke.sh drives.
//
// Everything here is safe for concurrent use, nil-tolerant (a nil
// Breaker allows everything, a nil Budget never denies, a nil Backoff
// never sleeps) so call sites stay unconditional, and free of
// repository imports so any layer can depend on it without cycles.
//
// The lint suite's retryloop analyzer enforces the contract from the
// other side: any loop that re-issues cluster.Node calls must consult
// this package — no bare retry loops.
package resilience
