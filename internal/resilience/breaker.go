package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes calls through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen passes probe calls after a cooldown; a success
	// closes the breaker, a failure re-opens it.
	BreakerHalfOpen
	// BreakerOpen fails calls fast without touching the peer.
	BreakerOpen
)

// String renders the state for logs and /healthz.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Breaker defaults: open after 5 consecutive failures, probe again
// after 5 seconds, close on the first successful probe.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// Breaker is a per-peer circuit breaker. Closed, it counts
// consecutive failures and opens at the threshold; open, Allow fails
// fast until the cooldown elapses; then the breaker half-opens and
// calls probe the peer — the first success (SuccessesToClose of them)
// closes it, any failure re-opens it and restarts the cooldown.
//
// Safe for concurrent use. A nil Breaker allows everything and
// records nothing, so call sites need no breaker-configured branch.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	successes int // consecutive successes while half-open
	openedAt  time.Time
	opens     uint64 // cumulative closed/half-open -> open transitions
	changed   bool   // a state change awaits its onChange callback

	threshold int
	cooldown  time.Duration
	toClose   int

	now      func() time.Time   // injectable clock for tests
	onChange func(BreakerState) // gauge hook, called outside mu
}

// NewBreaker creates a Breaker opening after threshold consecutive
// failures (<= 0: DefaultBreakerThreshold) and probing again after
// cooldown (<= 0: DefaultBreakerCooldown).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, toClose: 1, now: time.Now}
}

// OnStateChange registers a callback fired (outside the breaker's
// lock) whenever the state changes — the obs gauge hook. Set it
// before the breaker is shared.
func (b *Breaker) OnStateChange(fn func(BreakerState)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.onChange = fn
	b.mu.Unlock()
}

// Allow reports whether a call may proceed. While open it returns
// false until the cooldown has elapsed, then flips to half-open and
// lets the call through as a probe.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	if b.state == BreakerOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			return false
		}
		b.setLocked(BreakerHalfOpen)
		b.successes = 0
	}
	b.mu.Unlock()
	b.fireChange()
	return true
}

// OnSuccess records a successful call: it resets the failure streak
// and, from half-open, counts toward closing. A success while open
// (an in-flight call that started before the trip) half-opens the
// breaker early — fresh evidence the peer answers.
func (b *Breaker) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.failures = 0
	switch b.state {
	case BreakerHalfOpen, BreakerOpen:
		if b.successes++; b.successes >= b.toClose {
			b.setLocked(BreakerClosed)
			b.successes = 0
		} else if b.state == BreakerOpen {
			b.setLocked(BreakerHalfOpen)
		}
	}
	b.mu.Unlock()
	b.fireChange()
}

// OnFailure records a failed call: from closed it advances the streak
// (opening at the threshold), from half-open it re-opens immediately
// and restarts the cooldown.
func (b *Breaker) OnFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		if b.failures++; b.failures >= b.threshold {
			b.openLocked()
		}
	case BreakerHalfOpen:
		b.openLocked()
	case BreakerOpen:
		// Stragglers from before the trip add no information.
	}
	b.mu.Unlock()
	b.fireChange()
}

// openLocked trips the breaker; callers hold b.mu.
func (b *Breaker) openLocked() {
	b.setLocked(BreakerOpen)
	b.openedAt = b.now()
	b.failures = 0
	b.successes = 0
	b.opens++
}

// setLocked updates the state and remembers whether a change callback
// is due; callers hold b.mu and must call fireChange after unlocking.
func (b *Breaker) setLocked(s BreakerState) {
	if b.state != s {
		b.state = s
		b.changed = true
	}
}

// fireChange delivers a pending state-change callback outside the
// lock (the callback may itself take locks, e.g. a metrics vec).
func (b *Breaker) fireChange() {
	b.mu.Lock()
	due := b.changed
	b.changed = false
	st := b.state
	fn := b.onChange
	b.mu.Unlock()
	if due && fn != nil {
		fn(st)
	}
}

// State returns the breaker's current position (without advancing the
// open → half-open transition; Allow does that).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
