package resilience

import "sync"

// DefaultBudgetCap bounds how many retry tokens a Budget can bank:
// a long quiet stretch must not save up an unbounded burst of retries
// for the next outage.
const DefaultBudgetCap = 10

// Budget is a token-bucket retry budget: every first attempt deposits
// ratio tokens (capped), every retry spends one whole token. With
// ratio r, retries are bounded to ~r per request in steady state —
// retry volume degrades proportionally with traffic instead of
// multiplying it during an outage. Safe for concurrent use; a nil
// Budget never denies (retries unbounded).
type Budget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	max    float64
	denied uint64
}

// NewBudget creates a Budget granting ratio retries per first attempt
// (0.2 = one retry per five requests), banking at most max tokens
// (<= 0: DefaultBudgetCap). A ratio <= 0 returns nil — the unlimited
// budget.
func NewBudget(ratio, max float64) *Budget {
	if ratio <= 0 {
		return nil
	}
	if max <= 0 {
		max = DefaultBudgetCap
	}
	// Start full: a cold router facing an outage on its first requests
	// may still retry.
	return &Budget{tokens: max, ratio: ratio, max: max}
}

// Deposit credits one first attempt's worth of retry allowance.
func (b *Budget) Deposit() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens += b.ratio; b.tokens > b.max {
		b.tokens = b.max
	}
}

// Spend takes one retry token, reporting whether the retry is within
// budget. A denied retry is counted but costs nothing.
func (b *Budget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Denied returns how many retries the budget has rejected.
func (b *Budget) Denied() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.denied
}
