package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestBackoffDelayBounds(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 42)
	for attempt := 0; attempt < 8; attempt++ {
		ceil := 10 * time.Millisecond << attempt
		if ceil > 80*time.Millisecond {
			ceil = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("Delay(%d) = %v, want in (0, %v]", attempt, d, ceil)
			}
		}
	}
	var nilB *Backoff
	if d := nilB.Delay(3); d != 0 {
		t.Fatalf("nil backoff Delay = %v, want 0", d)
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	a := NewBackoff(0, 0, 7)
	b := NewBackoff(0, 0, 7)
	for i := 0; i < 20; i++ {
		if da, db := a.Delay(i%5), b.Delay(i%5); da != db {
			t.Fatalf("seeded backoffs diverged at draw %d: %v vs %v", i, da, db)
		}
	}
}

func TestSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
}

func TestAttemptsLeft(t *testing.T) {
	ctx := context.Background()
	if n := AttemptsLeft(ctx); n != 1 {
		t.Fatalf("unannotated AttemptsLeft = %d, want 1", n)
	}
	if n := AttemptsLeft(WithAttemptsLeft(ctx, 4)); n != 4 {
		t.Fatalf("AttemptsLeft = %d, want 4", n)
	}
	if n := AttemptsLeft(WithAttemptsLeft(ctx, -2)); n != 1 {
		t.Fatalf("clamped AttemptsLeft = %d, want 1", n)
	}
}

func TestCarveAttempt(t *testing.T) {
	// No caller deadline: the flat timeout applies.
	ctx, cancel := CarveAttempt(context.Background(), 50*time.Millisecond)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok || time.Until(dl) > 51*time.Millisecond {
		t.Fatalf("flat-only carve deadline = %v ok=%v", time.Until(dl), ok)
	}

	// Caller deadline of ~90ms with 3 attempts left: each gets ~30ms,
	// beating the generous 1s flat timeout.
	parent, pcancel := context.WithTimeout(context.Background(), 90*time.Millisecond)
	defer pcancel()
	actx, acancel := CarveAttempt(WithAttemptsLeft(parent, 3), time.Second)
	defer acancel()
	adl, ok := actx.Deadline()
	if !ok {
		t.Fatal("carved ctx has no deadline")
	}
	if rem := time.Until(adl); rem > 35*time.Millisecond {
		t.Fatalf("carved share = %v, want <= ~30ms", rem)
	}

	// The carved child expiring must not mark the parent done.
	<-actx.Done()
	if parent.Err() != nil {
		t.Fatal("parent expired with the carved child")
	}

	// No deadline anywhere: unbounded child.
	uctx, ucancel := CarveAttempt(context.Background(), 0)
	defer ucancel()
	if _, ok := uctx.Deadline(); ok {
		t.Fatal("no-deadline carve grew a deadline")
	}
}

func TestRetry(t *testing.T) {
	b := NewBackoff(time.Millisecond, 2*time.Millisecond, 1)
	calls := 0
	err := Retry(context.Background(), 3, b, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, nil)
	if err != nil || calls != 3 {
		t.Fatalf("Retry: err=%v calls=%d", err, calls)
	}

	calls = 0
	perm := errors.New("permanent")
	err = Retry(context.Background(), 5, b, func(ctx context.Context) error {
		calls++
		return perm
	}, func(e error) bool { return !errors.Is(e, perm) })
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("non-retryable: err=%v calls=%d, want 1 call", err, calls)
	}
}

func TestBudget(t *testing.T) {
	if b := NewBudget(0, 10); b != nil {
		t.Fatal("ratio<=0 should return the nil (unlimited) budget")
	}
	var nilB *Budget
	if !nilB.Spend() {
		t.Fatal("nil budget denied a retry")
	}

	b := NewBudget(0.5, 2)
	// Starts full (2 tokens).
	if !b.Spend() || !b.Spend() {
		t.Fatal("full budget denied")
	}
	if b.Spend() {
		t.Fatal("empty budget allowed a retry")
	}
	if b.Denied() != 1 {
		t.Fatalf("Denied = %d, want 1", b.Denied())
	}
	// Two deposits bank one whole token.
	b.Deposit()
	b.Deposit()
	if !b.Spend() {
		t.Fatal("replenished budget denied")
	}
	// Cap: many deposits cannot bank more than max.
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if b.Spend() && b.Spend() && b.Spend() {
		t.Fatal("budget banked past its cap")
	}
}

func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.now = func() time.Time { return now }
	var states []BreakerState
	b.OnStateChange(func(s BreakerState) { states = append(states, s) })

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("fresh breaker not closed/allowing")
	}
	// Two failures: still closed (threshold 3).
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	// A success resets the streak.
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the failure streak")
	}
	// Third consecutive failure trips it.
	b.OnFailure()
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state=%v opens=%d, want open/1", b.State(), b.Opens())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed before cooldown")
	}
	// Cooldown elapses: next Allow half-opens and permits a probe.
	now = now.Add(time.Second)
	if !b.Allow() || b.State() != BreakerHalfOpen {
		t.Fatalf("post-cooldown: allow=false or state=%v", b.State())
	}
	// Probe failure re-opens.
	b.OnFailure()
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("half-open failure: state=%v opens=%d", b.State(), b.Opens())
	}
	// Cooldown again; this time the probe succeeds and closes it.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second post-cooldown probe denied")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("probe success left state %v", b.State())
	}

	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(states) != len(want) {
		t.Fatalf("state changes = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state change %d = %v, want %v", i, states[i], want[i])
		}
	}

	var nilBr *Breaker
	if !nilBr.Allow() || nilBr.State() != BreakerClosed {
		t.Fatal("nil breaker should allow and read closed")
	}
	nilBr.OnSuccess()
	nilBr.OnFailure()
}

func TestBreakerConcurrent(t *testing.T) {
	// Race-detector coverage: hammer one breaker from many goroutines
	// mixing Allow/OnSuccess/OnFailure/State with a firing callback.
	b := NewBreaker(2, time.Millisecond)
	var changes sync.Map
	b.OnStateChange(func(s BreakerState) { changes.Store(s, true) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					if (g+i)%3 == 0 {
						b.OnFailure()
					} else {
						b.OnSuccess()
					}
				}
				_ = b.State()
				_ = b.Opens()
			}
		}(g)
	}
	wg.Wait()
	switch b.State() {
	case BreakerClosed, BreakerHalfOpen, BreakerOpen:
	default:
		t.Fatalf("breaker ended in invalid state %v", b.State())
	}
}

func TestParseFaults(t *testing.T) {
	if f, err := ParseFaults("", 1); f != nil || err != nil {
		t.Fatalf("empty spec: %v %v", f, err)
	}
	f, err := ParseFaults("latency:path=/query;d=200ms,cut:path=/batch;after=2;times=1,err:code=502;p=0.5,refuse:peer=node-b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(f.rules))
	}
	r := f.rules[0]
	if r.kind != FaultLatency || r.path != "/query" || r.delay != 200*time.Millisecond {
		t.Fatalf("latency rule parsed as %+v", r)
	}
	r = f.rules[1]
	if r.kind != FaultCut || r.after != 2 || r.times != 1 {
		t.Fatalf("cut rule parsed as %+v", r)
	}
	r = f.rules[2]
	if r.kind != FaultErr || r.code != 502 || r.prob != 0.5 {
		t.Fatalf("err rule parsed as %+v", r)
	}
	r = f.rules[3]
	if r.kind != FaultRefuse || r.peer != "node-b" {
		t.Fatalf("refuse rule parsed as %+v", r)
	}

	for _, bad := range []string{
		"explode:path=/x",
		"latency:path=/x", // missing d
		"latency:d=-5ms",  // non-positive duration
		"err:code=99",     // not an HTTP status
		"cut:after=-1",    // negative
		"refuse:p=1.5",    // probability out of range
		"refuse:times=0",  // zero trigger budget
		"refuse:pathoops", // not key=val
		"refuse:wat=1",    // unknown key
	} {
		if _, err := ParseFaults(bad, 1); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestFaultsHandler(t *testing.T) {
	f, err := ParseFaults("err:path=/boom;code=503;times=1,latency:path=/slow;d=30ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	var okHits int
	h := f.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okHits++
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected status = %d, want 503", resp.StatusCode)
	}
	// times=1 exhausted: the second call reaches the handler.
	resp, err = http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || okHits != 1 {
		t.Fatalf("post-budget status=%d hits=%d", resp.StatusCode, okHits)
	}

	start := time.Now()
	resp, err = http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("latency fault slept only %v", el)
	}
	fired := f.Fired()
	if fired[0] != 1 || fired[1] != 1 {
		t.Fatalf("Fired = %v, want [1 1]", fired)
	}

	// Refuse aborts the connection: the client sees a transport error.
	rf, err := ParseFaults("refuse:path=/", 1)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rf.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})))
	defer rts.Close()
	if _, err := http.Get(rts.URL + "/x"); err == nil {
		t.Fatal("refused request returned a response")
	}

	// Cut: two writes pass, the third aborts mid-stream.
	cf, err := ParseFaults("cut:path=/stream;after=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(cf.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < 5; i++ {
			io.WriteString(w, "line\n")
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
		}
	})))
	defer cts.Close()
	resp, err = http.Get(cts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil {
		t.Fatal("cut stream read to completion")
	}
	if got := string(body); got != "line\nline\n" {
		t.Fatalf("cut stream delivered %q, want two lines", got)
	}

	// nil Faults is a pass-through.
	var nilF *Faults
	if nilF.Handler(h) == nil {
		t.Fatal("nil Faults.Handler returned nil")
	}
	if nilF.Fired() != nil {
		t.Fatal("nil Faults.Fired returned rules")
	}
}

func TestFaultsTransport(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "0123456789")
	}))
	defer backend.Close()

	f, err := ParseFaults("refuse:path=/refuse,err:path=/err;code=500,cut:path=/cut;after=4,latency:path=/lat;d=25ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: f.Transport(nil)}

	if _, err := client.Get(backend.URL + "/refuse"); !IsInjected(err) {
		t.Fatalf("refuse: err=%v, want injected", err)
	}

	resp, err := client.Get(backend.URL + "/err")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("err fault status = %d, want 500", resp.StatusCode)
	}

	resp, err = client.Get(backend.URL + "/cut")
	if err != nil {
		t.Fatal(err)
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !IsInjected(rerr) {
		t.Fatalf("cut body err = %v, want injected", rerr)
	}
	if string(body) != "0123" {
		t.Fatalf("cut body = %q, want first 4 bytes", body)
	}

	start := time.Now()
	resp, err = client.Get(backend.URL + "/lat")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("latency fault slept only %v", el)
	}

	// Unmatched paths pass through untouched.
	resp, err = client.Get(backend.URL + "/plain")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "0123456789" {
		t.Fatalf("pass-through body = %q", body)
	}

	var nilF *Faults
	if nilF.Transport(http.DefaultTransport) != http.DefaultTransport {
		t.Fatal("nil Faults.Transport should return inner unchanged")
	}
	if !IsInjected(&faultError{kind: FaultCut}) || IsInjected(errors.New("x")) || IsInjected(nil) {
		t.Fatal("IsInjected misclassified")
	}
}
