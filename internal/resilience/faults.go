package resilience

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultKind names one injectable failure mode.
type FaultKind int

const (
	// FaultRefuse fails the call before it starts: the server aborts the
	// connection without a response, the client transport returns a
	// connection-refused style error.
	FaultRefuse FaultKind = iota
	// FaultLatency delays the call by the rule's duration before letting
	// it proceed normally.
	FaultLatency
	// FaultErr answers with an injected HTTP status (default 503)
	// instead of the real handler/peer response.
	FaultErr
	// FaultCut severs the stream mid-flight: the server aborts after
	// `after` response writes, the client sees the body error out after
	// `after` bytes.
	FaultCut
)

func (k FaultKind) String() string {
	switch k {
	case FaultRefuse:
		return "refuse"
	case FaultLatency:
		return "latency"
	case FaultErr:
		return "err"
	case FaultCut:
		return "cut"
	}
	return "unknown"
}

// faultRule is one parsed injection rule.
type faultRule struct {
	kind   FaultKind
	path   string        // request path prefix ("" matches all)
	method string        // exact method ("" matches all)
	peer   string        // host substring, matched client-side ("" matches all)
	prob   float64       // trigger probability in (0,1]
	times  int           // remaining triggers; < 0 means unlimited
	delay  time.Duration // latency rules
	code   int           // err rules
	after  int           // cut rules: writes (server) / bytes (client) before the cut
	fired  uint64        // cumulative triggers, for Stats
}

// Faults is a set of seeded, deterministic fault-injection rules. It
// mounts server-side as a middleware (Handler) — the -fault-spec hook
// in xpathserve and xpathrouter — or client-side as a transport
// wrapper (Transport). Safe for concurrent use; a nil *Faults injects
// nothing.
type Faults struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*faultRule
}

// ParseFaults parses a fault spec into an injector. The grammar is a
// comma-separated list of rules, each "kind:key=val;key=val":
//
//	kind   refuse | latency | err | cut
//	path   request path prefix the rule matches (default: all)
//	method HTTP method the rule matches (default: all)
//	peer   substring of the target host, client side only (default: all)
//	p      trigger probability 0 < p <= 1 (default 1)
//	times  trigger at most N times, then lie dormant (default unlimited)
//	d      latency duration, e.g. 200ms (latency rules; required)
//	code   injected status (err rules; default 503)
//	after  writes (server) or bytes (client) to pass before cutting
//	       (cut rules; default 0 — cut immediately)
//
// Example: "latency:path=/query;d=200ms,cut:path=/batch;after=2;times=1".
// An empty spec returns (nil, nil). Seed 0 derives one from the clock;
// pass a fixed seed for reproducible chaos runs.
func ParseFaults(spec string, seed int64) (*Faults, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	f := &Faults{rng: rand.New(rand.NewSource(seed))}
	for _, rs := range strings.Split(spec, ",") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		r, err := parseRule(rs)
		if err != nil {
			return nil, fmt.Errorf("fault spec %q: %w", rs, err)
		}
		f.rules = append(f.rules, r)
	}
	if len(f.rules) == 0 {
		return nil, nil
	}
	return f, nil
}

func parseRule(rs string) (*faultRule, error) {
	kindStr, rest, _ := strings.Cut(rs, ":")
	r := &faultRule{prob: 1, times: -1, code: http.StatusServiceUnavailable}
	switch kindStr {
	case "refuse":
		r.kind = FaultRefuse
	case "latency":
		r.kind = FaultLatency
	case "err":
		r.kind = FaultErr
	case "cut":
		r.kind = FaultCut
	default:
		return nil, fmt.Errorf("unknown fault kind %q", kindStr)
	}
	if rest == "" {
		if r.kind == FaultLatency {
			return nil, fmt.Errorf("latency fault needs d=<duration>")
		}
		return r, nil
	}
	for _, kv := range strings.Split(rest, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("malformed option %q (want key=val)", kv)
		}
		var err error
		switch key {
		case "path":
			r.path = val
		case "method":
			r.method = strings.ToUpper(val)
		case "peer":
			r.peer = val
		case "p":
			if r.prob, err = strconv.ParseFloat(val, 64); err != nil || r.prob <= 0 || r.prob > 1 {
				return nil, fmt.Errorf("p=%q: want probability in (0,1]", val)
			}
		case "times":
			if r.times, err = strconv.Atoi(val); err != nil || r.times < 1 {
				return nil, fmt.Errorf("times=%q: want positive integer", val)
			}
		case "d":
			if r.delay, err = time.ParseDuration(val); err != nil || r.delay <= 0 {
				return nil, fmt.Errorf("d=%q: want positive duration", val)
			}
		case "code":
			if r.code, err = strconv.Atoi(val); err != nil || r.code < 100 || r.code > 599 {
				return nil, fmt.Errorf("code=%q: want HTTP status", val)
			}
		case "after":
			if r.after, err = strconv.Atoi(val); err != nil || r.after < 0 {
				return nil, fmt.Errorf("after=%q: want non-negative integer", val)
			}
		default:
			return nil, fmt.Errorf("unknown option %q", key)
		}
	}
	if r.kind == FaultLatency && r.delay <= 0 {
		return nil, fmt.Errorf("latency fault needs d=<duration>")
	}
	return r, nil
}

// match decides under the lock whether a rule triggers for the given
// request shape, consuming its trigger budget when it does.
func (f *Faults) match(method, path, host string) *faultRule {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.times == 0 {
			continue
		}
		if r.path != "" && !strings.HasPrefix(path, r.path) {
			continue
		}
		if r.method != "" && r.method != method {
			continue
		}
		if r.peer != "" && !strings.Contains(host, r.peer) {
			continue
		}
		if r.prob < 1 && f.rng.Float64() >= r.prob {
			continue
		}
		if r.times > 0 {
			r.times--
		}
		r.fired++
		return r
	}
	return nil
}

// Fired returns how many times each rule has triggered, in spec order
// — the chaos harness's assertion hook.
func (f *Faults) Fired() []uint64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]uint64, len(f.rules))
	for i, r := range f.rules {
		out[i] = r.fired
	}
	return out
}

// Handler mounts the injector as server middleware: refuse and cut
// abort the connection (http.ErrAbortHandler — the client sees EOF /
// a reset, not a status), latency sleeps before the real handler, err
// answers with the injected status. Peer selectors never match
// server-side. A nil *Faults returns next unchanged.
func (f *Faults) Handler(next http.Handler) http.Handler {
	if f == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := f.match(req.Method, req.URL.Path, "")
		if r == nil {
			next.ServeHTTP(w, req)
			return
		}
		switch r.kind {
		case FaultRefuse:
			panic(http.ErrAbortHandler)
		case FaultLatency:
			if err := Sleep(req.Context(), r.delay); err != nil {
				return
			}
			next.ServeHTTP(w, req)
		case FaultErr:
			http.Error(w, "injected fault", r.code)
		case FaultCut:
			cw := &cutWriter{ResponseWriter: w, left: r.after}
			next.ServeHTTP(cw, req)
		}
	})
}

// cutWriter passes through `left` Write calls, flushes what it let
// out so the client observes a truncated-but-started stream, then
// severs the connection. The cut must not panic: streaming handlers
// legitimately write from worker goroutines, where a panic would take
// down the process instead of one response. Hijacking the connection
// and closing it works from any goroutine; where hijacking is
// unsupported the writes just start failing.
type cutWriter struct {
	http.ResponseWriter
	mu   sync.Mutex
	left int
	cut  bool
}

func (c *cutWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		if !c.cut {
			c.cut = true
			if fl, ok := c.ResponseWriter.(http.Flusher); ok {
				fl.Flush()
			}
			if hj, ok := c.ResponseWriter.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
		}
		return 0, &faultError{kind: FaultCut}
	}
	c.left--
	return c.ResponseWriter.Write(p)
}

// Flush forwards to the wrapped writer so streaming handlers keep
// their per-line flushing behaviour under injection.
func (c *cutWriter) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return
	}
	if fl, ok := c.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// faultError marks a client-side injected failure so tests can tell
// it from organic transport errors.
type faultError struct{ kind FaultKind }

func (e *faultError) Error() string { return "injected fault: " + e.kind.String() }

// IsInjected reports whether err originated from a Faults transport.
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*faultError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// faultTransport applies the injector's rules to outbound requests.
type faultTransport struct {
	f     *Faults
	inner http.RoundTripper
}

// Transport mounts the injector as a client http.RoundTripper wrapper:
// refuse fails the round trip outright, latency sleeps first (bounded
// by the request context), err synthesizes a response without touching
// the peer, cut lets the real response start and errors its body after
// `after` bytes. A nil *Faults returns inner unchanged.
func (f *Faults) Transport(inner http.RoundTripper) http.RoundTripper {
	if f == nil {
		return inner
	}
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &faultTransport{f: f, inner: inner}
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r := t.f.match(req.Method, req.URL.Path, req.URL.Host)
	if r == nil {
		return t.inner.RoundTrip(req)
	}
	switch r.kind {
	case FaultRefuse:
		return nil, &faultError{kind: FaultRefuse}
	case FaultLatency:
		if err := Sleep(req.Context(), r.delay); err != nil {
			return nil, err
		}
		return t.inner.RoundTrip(req)
	case FaultErr:
		return &http.Response{
			StatusCode: r.code,
			Status:     fmt.Sprintf("%d injected fault", r.code),
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(bytes.NewReader([]byte("injected fault\n"))),
			Request:    req,
		}, nil
	case FaultCut:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &cutBody{inner: resp.Body, left: int64(r.after)}
		return resp, nil
	}
	return t.inner.RoundTrip(req)
}

// cutBody yields `left` bytes of the real body, then errors as an
// injected mid-stream cut.
type cutBody struct {
	inner io.ReadCloser
	left  int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, &faultError{kind: FaultCut}
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.inner.Read(p)
	b.left -= int64(n)
	if err == nil && b.left <= 0 {
		err = &faultError{kind: FaultCut}
	}
	return n, err
}

func (b *cutBody) Close() error { return b.inner.Close() }
