package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Default backoff shape: first retry waits up to ~25ms, growth is
// exponential, and no single wait exceeds a second — long enough to
// let a blip pass, short enough that a request's deadline survives a
// couple of attempts.
const (
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffCap  = time.Second
)

// Backoff produces jittered exponential retry delays: attempt k draws
// uniformly from (0, min(cap, base<<k)] ("full jitter"), so
// concurrent retriers decorrelate instead of hammering a recovering
// peer in lockstep. Safe for concurrent use; a nil Backoff always
// returns zero delay.
type Backoff struct {
	base, cap time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff creates a Backoff. Zero base/cap take the defaults; seed
// 0 derives one from the clock (pass a fixed seed for reproducible
// tests and chaos runs).
func NewBackoff(base, cap time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the wait before retry attempt k (0-based: Delay(0)
// precedes the first retry). The result is jittered and bounded by
// the cap; a nil Backoff returns 0.
func (b *Backoff) Delay(attempt int) time.Duration {
	if b == nil {
		return 0
	}
	d := b.base
	for i := 0; i < attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(b.rng.Int63n(int64(d))) + 1
}

// Sleep waits for d or until ctx is done, returning ctx.Err() in the
// latter case — the retry loop's pause primitive, so a client
// disconnect ends the backoff wait immediately.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attemptsKey carries the retry chain's remaining attempt count in a
// context.
type attemptsKey struct{}

// WithAttemptsLeft annotates ctx with how many attempts (this one
// included) the caller's retry chain still has — the signal
// CarveAttempt divides the remaining deadline by.
func WithAttemptsLeft(ctx context.Context, n int) context.Context {
	if n < 1 {
		n = 1
	}
	return context.WithValue(ctx, attemptsKey{}, n)
}

// AttemptsLeft reads the annotation set by WithAttemptsLeft (1 when
// absent: an unannotated call is its own last attempt).
func AttemptsLeft(ctx context.Context) int {
	if n, ok := ctx.Value(attemptsKey{}).(int); ok && n > 0 {
		return n
	}
	return 1
}

// CarveAttempt derives one attempt's context: its deadline is
// min(flat, remaining caller deadline / attempts left), so a tight
// client deadline is split across the retries still to come instead
// of the first attempt consuming all of it, and a generous one is
// still clipped by the per-call flat timeout. With no caller deadline
// the flat timeout alone applies; a non-positive flat with no caller
// deadline leaves the context unbounded.
//
// The returned context is a child: when its carved deadline trips
// while the caller's context is still live, the failure reads as the
// attempt's (a slow peer — retryable), not the caller's.
func CarveAttempt(ctx context.Context, flat time.Duration) (context.Context, context.CancelFunc) {
	budget := flat
	if dl, ok := ctx.Deadline(); ok {
		share := time.Until(dl) / time.Duration(AttemptsLeft(ctx))
		if budget <= 0 || share < budget {
			budget = share
		}
	}
	if budget <= 0 {
		if _, ok := ctx.Deadline(); ok {
			// The caller's deadline has already passed; a zero-budget
			// child expires immediately, which is the honest outcome.
			return context.WithTimeout(ctx, 0)
		}
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, budget)
}

// Retry runs op up to attempts times, pacing retries with the backoff
// and carving each attempt's deadline from ctx. It stops early when
// op succeeds, when retryable (nil: retry everything) rejects the
// error, or when ctx ends; the last error is returned. This is the
// closure form of the router's inline retry loops, used where the
// operation targets one peer rather than walking candidates.
func Retry(ctx context.Context, attempts int, b *Backoff, op func(context.Context) error, retryable func(error) bool) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if serr := Sleep(ctx, b.Delay(i-1)); serr != nil {
				return err
			}
		}
		actx := WithAttemptsLeft(ctx, attempts-i)
		if err = op(actx); err == nil {
			return nil
		}
		if ctx.Err() != nil || (retryable != nil && !retryable(err)) {
			return err
		}
	}
	return err
}
