package wadler

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// positionalQueries exercise the index-served positional path (single
// positional predicate on a child::name step inside a bottom-up path)
// as well as the generic multi-predicate loop it diverts from.
var positionalQueries = []string{
	"//*[child::c[position() = 2]]",
	"//*[child::c[position() = last()]]",
	"//*[child::c[last() > 1]]",
	"//*[child::b[position() mod 2 = 1]]",
	"//*[descendant::a[child::b[position() != last()]]]",
	"//*[child::c[position() = 2] = '2']",
	// Multi-predicate and non-child shapes take the generic loop.
	"//*[child::c[position() > 1][position() = last()]]",
	"//*[descendant::c[position() = 3]]",
	"//*[child::*[position() = 2]]",
}

// positionalDoc builds a randomized nested document with repeated
// element names so positional ranks vary.
func positionalDoc(r *rand.Rand, n int) *xmltree.Document {
	var b strings.Builder
	b.WriteString(`<root>`)
	var open []string
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			b.WriteString(`<a>`)
			open = append(open, "a")
		case 1:
			b.WriteString(`<b>`)
			open = append(open, "b")
		case 2:
			b.WriteString(`<c>2</c>`)
		case 3:
			b.WriteString(`<c/>`)
		default:
			if len(open) > 0 {
				b.WriteString(`</` + open[len(open)-1] + `>`)
				open = open[:len(open)-1]
			} else {
				b.WriteString(`<b><c/><c>2</c></b>`)
			}
		}
	}
	for len(open) > 0 {
		b.WriteString(`</` + open[len(open)-1] + `>`)
		open = open[:len(open)-1]
	}
	b.WriteString(`</root>`)
	return xmltree.MustParseString(b.String())
}

// TestPositionalAgainstNaive checks the indexed positional path against
// the naive reference engine on randomized documents, at every
// parallelism level: positions served from the posting lists must agree
// with materialize-and-scan exactly.
func TestPositionalAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for round := 0; round < 12; round++ {
		d := positionalDoc(r, 10+r.Intn(150))
		ref := naive.New(d)
		c := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
		for _, q := range positionalQueries {
			e := xpath.MustParse(q)
			want, err := ref.Evaluate(e, c)
			if err != nil {
				t.Fatalf("naive %q: %v", q, err)
			}
			for _, p := range []int{0, 1, 2, 8} {
				ev := New(d)
				ev.Parallelism = p
				got, err := ev.Evaluate(e, c)
				if err != nil {
					t.Fatalf("round %d %q p=%d: %v", round, q, p, err)
				}
				if !got.Equal(want) {
					t.Errorf("round %d %q p=%d: wadler = %+v, naive = %+v", round, q, p, got, want)
				}
			}
		}
	}
}

// TestChildNamedSurvivesZeroAlloc pins the acceptance property: the
// index-served positional check materializes no candidate set — zero
// allocations per previous-context node.
func TestChildNamedSurvivesZeroAlloc(t *testing.T) {
	var b strings.Builder
	b.WriteString(`<root>`)
	for i := 0; i < 64; i++ {
		b.WriteString(`<c>x</c>`)
	}
	b.WriteString(`</root>`)
	d := xmltree.MustParseString(b.String())
	ix := d.Index() // build the index outside the measured region
	x := d.DocumentElement()
	yt := append(xmltree.NodeSet(nil), ix.Named("c")...)
	pred := xpath.MustParse("child::c[position() = last() - 1]").(*xpath.Path).Steps[0].Preds[0]
	st := &state{doc: d, pre: map[xpath.Expr][]bool{}}
	allocs := testing.AllocsPerRun(200, func() {
		ok, err := st.childNamedSurvives(x, "c", pred, yt)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("childNamedSurvives = false, want true")
		}
	})
	if allocs != 0 {
		t.Errorf("childNamedSurvives allocates %v per run, want 0", allocs)
	}
}
