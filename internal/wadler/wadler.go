// Package wadler implements Section 11: the Extended Wadler Fragment
// and the OptMinContext algorithm (Algorithm 11.1).
//
// The Extended Wadler Fragment restricts XPath so that every node-set
// subexpression can be evaluated by *backward* propagation of node sets
// (never materializing dom×2^dom relations):
//
//	Restriction 1 — no data-selecting functions (local-name,
//	    namespace-uri, name, string, number, string-length,
//	    normalize-space);
//	Restriction 2 — no nset RelOp nset with both sides context
//	    dependent, no count or sum; in nset RelOp scalar the scalar must
//	    not depend on any context;
//	Restriction 3 — in id(id(…(c)…)) the innermost c must not depend on
//	    any context.
//
// Queries in the fragment run in O(|D|·|Q|²) space and O(|D|²·|Q|²)
// time (Theorem 11.3).
//
// OptMinContext evaluates every "bottom-up location path" of the query
// — subexpressions boolean(π) and π RelOp c with context-independent c
// — innermost first, by eval_bottomup_path/propagate_path_backwards
// (Appendix A), installs the resulting dom → bool tables into a
// MinContext evaluator, and runs MinContext for the rest. Subexpressions
// outside the fragment simply fall back to MinContext's own machinery,
// so OptMinContext supports all of XPath at MinContext's bounds while
// meeting the better fragment bounds where they apply (Corollaries 11.4
// and 11.5).
package wadler

import (
	"context"
	"fmt"

	"repro/internal/axes"
	"repro/internal/evalutil"
	"repro/internal/mincontext"
	"repro/internal/semantics"
	"repro/internal/topdown"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Evaluator is the OptMinContext query processor.
type Evaluator struct {
	doc *xmltree.Document

	// Parallelism is the worker budget for the whole-document scans of
	// the bottom-up phase (node-test filters and inverse axis images).
	// 0 or 1 evaluates sequentially; results are identical either way.
	Parallelism int

	// Stats filled by the last Evaluate call.
	LastBottomUpPaths int // number of subexpressions evaluated bottom-up
}

// New returns an OptMinContext evaluator for the document.
func New(d *xmltree.Document) *Evaluator { return &Evaluator{doc: d} }

// Evaluate implements Algorithm 11.1: evaluate all bottom-up location
// paths inside the query (innermost first), then delegate to MinContext
// with those results installed.
func (ev *Evaluator) Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	return ev.EvaluateContext(context.Background(), e, c)
}

// EvaluateContext is Evaluate with cancellation: both the bottom-up
// backward-propagation phase and the MinContext phase it delegates to
// check ctx at throttled checkpoints and abandon the evaluation with
// ctx's error once it is done.
func (ev *Evaluator) EvaluateContext(ctx context.Context, e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	mc := mincontext.New(ev.doc)
	st := &state{doc: ev.doc, pre: map[xpath.Expr][]bool{}, scalar: topdown.New(ev.doc),
		ctx: ctx, cancel: evalutil.NewCanceller(ctx), par: ev.Parallelism}
	if err := st.collect(e); err != nil {
		return semantics.Value{}, err
	}
	for _, cand := range st.order {
		mc.SetPrecomputed(cand, st.pre[cand])
	}
	ev.LastBottomUpPaths = len(st.order)
	return mc.EvaluateContext(ctx, e, c)
}

// state carries the precomputed dom → bool tables and the collection
// order (innermost first).
type state struct {
	doc    *xmltree.Document
	pre    map[xpath.Expr][]bool
	order  []xpath.Expr
	scalar *topdown.Evaluator // for context-independent operands c
	ctx    context.Context    // cancellation for the scalar evaluations
	cancel *evalutil.Canceller
	par    int // worker budget for whole-document scans
}

// context returns the evaluation context, defaulting to Background for
// the bare fragment-checking states built without one.
func (st *state) context() context.Context {
	if st.ctx != nil {
		return st.ctx
	}
	return context.Background()
}

// evalScalar evaluates a context-independent operand from the root with
// the top-down engine, honoring the query's cancellation context (the
// operand itself may contain whole-document paths).
func (st *state) evalScalar(e xpath.Expr) (semantics.Value, error) {
	ctx := st.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return st.scalar.EvaluateContext(ctx, e, semantics.Context{Node: st.doc.RootID(), Pos: 1, Size: 1})
}

// ------------------------------------------------------------------
// Fragment membership
// ------------------------------------------------------------------

// prohibited are the data-selecting functions of Restriction 1.
var prohibited = map[string]bool{
	"local-name": true, "namespace-uri": true, "name": true,
	"string": true, "number": true, "string-length": true,
	"normalize-space": true,
}

// InFragment reports whether a normalized query lies in the Extended
// Wadler Fragment. The query as a whole must be a location path, or a
// scalar expression whose node-set parts all occur as bottom-up
// location paths.
func InFragment(e xpath.Expr) bool {
	st := &state{}
	switch {
	case isOutermostPath(e):
		return st.pathInFragment(e)
	default:
		return st.scalarInFragment(e)
	}
}

func isOutermostPath(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Path:
		return true
	case *xpath.Binary:
		return x.Op == xpath.OpUnion && isOutermostPath(x.Left) && isOutermostPath(x.Right)
	default:
		return false
	}
}

func (st *state) pathInFragment(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Binary:
		return st.pathInFragment(x.Left) && st.pathInFragment(x.Right)
	case *xpath.Path:
		if x.Filter != nil && !st.idHeadOK(x.Filter) {
			return false
		}
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				if !st.scalarInFragment(p) {
					return false
				}
			}
		}
		return true
	default:
		return false
	}
}

// idHeadOK checks Restriction 3 for id(id(…(x)…)) heads: the innermost
// argument is either context independent or a fragment path.
func (st *state) idHeadOK(e xpath.Expr) bool {
	c, ok := e.(*xpath.Call)
	if !ok || c.Name != "id" {
		return false
	}
	switch a := c.Args[0].(type) {
	case *xpath.Call:
		if a.Name == "id" {
			return st.idHeadOK(a)
		}
		return xpath.RelevantContext(a) == 0 && st.scalarInFragment(a)
	case *xpath.Path:
		return st.pathInFragment(a)
	default:
		return xpath.RelevantContext(a) == 0
	}
}

// scalarInFragment checks a scalar (non-node-set) expression: node sets
// may occur only under boolean(π) or as π RelOp c / c RelOp π with a
// context-independent c.
func (st *state) scalarInFragment(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Number, *xpath.Literal:
		return true
	case *xpath.Negate:
		return st.scalarInFragment(x.X)
	case *xpath.Binary:
		if x.Op == xpath.OpUnion {
			return false // node set in scalar position
		}
		if x.Op.IsRelOp() {
			ln, rn := x.Left.Type() == xpath.TypeNodeSet, x.Right.Type() == xpath.TypeNodeSet
			switch {
			case ln && rn:
				// nset RelOp nset: only with one side context free
				// (the appendix handles that case; Restriction 2
				// forbids both sides context dependent).
				if xpath.RelevantContext(x.Right) == 0 {
					return st.bottomUpPathOK(x.Left) && st.scalarNsetOK(x.Right)
				}
				if xpath.RelevantContext(x.Left) == 0 {
					return st.bottomUpPathOK(x.Right) && st.scalarNsetOK(x.Left)
				}
				return false
			case ln:
				return st.bottomUpPathOK(x.Left) && xpath.RelevantContext(x.Right) == 0 && st.scalarInFragment(x.Right)
			case rn:
				return st.bottomUpPathOK(x.Right) && xpath.RelevantContext(x.Left) == 0 && st.scalarInFragment(x.Left)
			}
		}
		return st.scalarInFragment(x.Left) && st.scalarInFragment(x.Right)
	case *xpath.Call:
		if prohibited[x.Name] {
			return false
		}
		switch x.Name {
		case "count", "sum":
			return false // Restriction 2
		case "boolean":
			if x.Args[0].Type() == xpath.TypeNodeSet {
				return st.bottomUpPathOK(x.Args[0])
			}
			return st.scalarInFragment(x.Args[0])
		case "id":
			return false // node set in scalar position
		case "lang":
			return false // reads document data from the context node
		}
		for _, a := range x.Args {
			if a.Type() == xpath.TypeNodeSet {
				return false
			}
			if !st.scalarInFragment(a) {
				return false
			}
		}
		return true
	case *xpath.Path, *xpath.FilterExpr:
		return false // node set in scalar position
	case *xpath.VarRef:
		return false
	default:
		return false
	}
}

// scalarNsetOK accepts a context-independent node-set operand c (an
// absolute fragment path or an id chain over a constant).
func (st *state) scalarNsetOK(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Path:
		return st.pathInFragment(x)
	case *xpath.Call:
		return st.idHeadOK(x)
	default:
		return false
	}
}

// bottomUpPathOK checks that a path can be evaluated by backward
// propagation: any axes, any node tests, fragment predicates, and an
// id-chain head at most.
func (st *state) bottomUpPathOK(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Path:
		if x.Filter != nil && !st.idHeadOK(x.Filter) {
			return false
		}
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				if !st.scalarInFragment(p) {
					return false
				}
			}
		}
		return true
	case *xpath.Call:
		return st.idHeadOK(x)
	default:
		return false
	}
}

// ------------------------------------------------------------------
// Collection of bottom-up location paths (Algorithm 11.1, step 1)
// ------------------------------------------------------------------

// collect walks the query post-order and evaluates every qualifying
// bottom-up location path, innermost first.
func (st *state) collect(e xpath.Expr) error {
	switch x := e.(type) {
	case *xpath.Negate:
		return st.collect(x.X)
	case *xpath.Binary:
		if err := st.collect(x.Left); err != nil {
			return err
		}
		if err := st.collect(x.Right); err != nil {
			return err
		}
		if x.Op.IsRelOp() {
			if err := st.maybeEvalRelOp(x); err != nil {
				return err
			}
		}
		return nil
	case *xpath.Call:
		for _, a := range x.Args {
			if err := st.collect(a); err != nil {
				return err
			}
		}
		if x.Name == "boolean" && x.Args[0].Type() == xpath.TypeNodeSet && st.bottomUpPathOK(x.Args[0]) {
			if st.predsHandled(x.Args[0]) {
				return st.evalBottomUpPath(x, x.Args[0], nil, 0)
			}
		}
		return nil
	case *xpath.FilterExpr:
		if err := st.collect(x.Primary); err != nil {
			return err
		}
		for _, p := range x.Preds {
			if err := st.collect(p); err != nil {
				return err
			}
		}
		return nil
	case *xpath.Path:
		if x.Filter != nil {
			if err := st.collect(x.Filter); err != nil {
				return err
			}
		}
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				if err := st.collect(p); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return nil
	}
}

// maybeEvalRelOp evaluates a qualifying π RelOp c / c RelOp π node
// bottom-up.
func (st *state) maybeEvalRelOp(b *xpath.Binary) error {
	ln := b.Left.Type() == xpath.TypeNodeSet && xpath.RelevantContext(b.Left) != 0
	rn := b.Right.Type() == xpath.TypeNodeSet && xpath.RelevantContext(b.Right) != 0
	var pathSide, constSide xpath.Expr
	op := b.Op
	switch {
	case ln && !rn && xpath.RelevantContext(b.Right) == 0:
		pathSide, constSide = b.Left, b.Right
	case rn && !ln && xpath.RelevantContext(b.Left) == 0:
		pathSide, constSide = b.Right, b.Left
		op = flipOp(op)
	default:
		return nil
	}
	if !st.bottomUpPathOK(pathSide) || !st.predsHandled(pathSide) {
		return nil
	}
	// The constant side must itself be evaluable (any XPath; use the
	// polynomial top-down engine once — it is context independent).
	cv, err := st.evalScalar(constSide)
	if err != nil {
		if st.ctx != nil && st.ctx.Err() != nil {
			return st.ctx.Err() // cancelled, not merely out of fragment
		}
		return nil // leave it to MinContext
	}
	return st.evalBottomUpPath(b, pathSide, &cv, op)
}

func flipOp(op xpath.BinOp) xpath.BinOp {
	switch op {
	case xpath.OpLt:
		return xpath.OpGt
	case xpath.OpLe:
		return xpath.OpGe
	case xpath.OpGt:
		return xpath.OpLt
	case xpath.OpGe:
		return xpath.OpLe
	default:
		return op
	}
}

// predsHandled reports whether every predicate inside the path can be
// evaluated by this package's predicate evaluator — i.e. all its
// node-set parts are themselves already-collected bottom-up paths.
func (st *state) predsHandled(e xpath.Expr) bool {
	p, ok := e.(*xpath.Path)
	if !ok {
		_, isCall := e.(*xpath.Call)
		return isCall // id(…) heads carry no predicates of their own
	}
	for _, s := range p.Steps {
		for _, pr := range s.Preds {
			if !st.predHandled(pr) {
				return false
			}
		}
	}
	if p.Filter != nil {
		return st.idFilterHandled(p.Filter)
	}
	return true
}

func (st *state) idFilterHandled(e xpath.Expr) bool {
	c, ok := e.(*xpath.Call)
	if !ok || c.Name != "id" {
		return false
	}
	switch a := c.Args[0].(type) {
	case *xpath.Path:
		return st.predsHandled(a)
	case *xpath.Call:
		if a.Name == "id" {
			return st.idFilterHandled(a)
		}
		return xpath.RelevantContext(a) == 0
	default:
		return xpath.RelevantContext(a) == 0
	}
}

// predHandled mirrors evalPred's coverage.
func (st *state) predHandled(e xpath.Expr) bool {
	if _, ok := st.pre[e]; ok {
		return true
	}
	switch x := e.(type) {
	case *xpath.Number, *xpath.Literal:
		return true
	case *xpath.Negate:
		return st.predHandled(x.X)
	case *xpath.Binary:
		if x.Op == xpath.OpUnion {
			return false
		}
		if x.Op.IsRelOp() &&
			(x.Left.Type() == xpath.TypeNodeSet || x.Right.Type() == xpath.TypeNodeSet) {
			_, ok := st.pre[e]
			return ok
		}
		return st.predHandled(x.Left) && st.predHandled(x.Right)
	case *xpath.Call:
		switch x.Name {
		case "position", "last", "true", "false":
			return true
		case "not", "boolean":
			if _, ok := st.pre[x.Args[0]]; ok {
				return true
			}
			if x.Args[0].Type() == xpath.TypeNodeSet {
				return false
			}
			return st.predHandled(x.Args[0])
		case "floor", "ceiling", "round", "concat", "starts-with",
			"contains", "substring", "substring-before", "substring-after",
			"translate":
			for _, a := range x.Args {
				if a.Type() == xpath.TypeNodeSet || !st.predHandled(a) {
					return false
				}
			}
			return true
		default:
			return false
		}
	default:
		return false
	}
}

// ------------------------------------------------------------------
// eval_bottomup_path (Appendix A)
// ------------------------------------------------------------------

// evalBottomUpPath computes the dom → bool table of a boolean(π) or
// π RelOp c node and stores it under the whole expression key.
//
// Step 1 determines the initial node set Y; step 2 propagates Y
// backwards through the inverted location steps.
func (st *state) evalBottomUpPath(key xpath.Expr, pathSide xpath.Expr, c *semantics.Value, op xpath.BinOp) error {
	if _, done := st.pre[key]; done {
		return nil
	}
	n := st.doc.Len()
	var y xmltree.NodeSet
	var err error
	boolRelOp := false
	if c == nil {
		// boolean(π): Y := dom.
		if y, err = st.dom(); err != nil {
			return err
		}
	} else {
		switch c.Kind {
		case xpath.TypeBoolean:
			// π RelOp bool is boolean(π) RelOp bool: propagate with
			// Y = dom, compare afterwards.
			if y, err = st.dom(); err != nil {
				return err
			}
			boolRelOp = true
		default:
			// Y := {y | strval-based comparison with c holds}.
			for i := 0; i < n; i++ {
				id := xmltree.NodeID(i)
				if semantics.Compare(st.doc, op, semantics.NodeSet(xmltree.NodeSet{id}), *c) {
					y = append(y, id)
				}
			}
		}
	}
	reach, err := st.propagateBackwards(pathSide, y)
	if err != nil {
		return err
	}
	vals := make([]bool, n)
	for _, x := range reach {
		vals[x] = true
	}
	if boolRelOp {
		for i := range vals {
			vals[i] = semantics.Compare(st.doc, op, semantics.Boolean(vals[i]), *c)
		}
	}
	st.pre[key] = vals
	st.order = append(st.order, key)
	return nil
}

// dom materializes the full node set — an O(|D|) fill billed against
// the cancellation checkpoint.
func (st *state) dom() (xmltree.NodeSet, error) {
	if err := st.cancel.CheckN(st.doc.Len()); err != nil {
		return nil, err
	}
	s := make(xmltree.NodeSet, st.doc.Len())
	for i := range s {
		s[i] = xmltree.NodeID(i)
	}
	return s, nil
}

// propagateBackwards is propagate_path_backwards: it walks the path's
// steps from last to first, inverting each one, and returns
// {x | ∃y ∈ Y reachable from x via the path}.
func (st *state) propagateBackwards(e xpath.Expr, y xmltree.NodeSet) (xmltree.NodeSet, error) {
	if len(y) == 0 {
		return nil, nil
	}
	switch p := e.(type) {
	case *xpath.Call: // bare id(…) chain
		return st.propagateIDHead(p, y)
	case *xpath.Path:
		cur := y
		for i := len(p.Steps) - 1; i >= 0; i-- {
			var err error
			cur, err = st.propagateStepBackwards(p.Steps[i], cur)
			if err != nil {
				return nil, err
			}
			if len(cur) == 0 {
				return nil, nil
			}
		}
		if p.Filter != nil {
			return st.propagateIDHead(p.Filter, cur)
		}
		if p.Absolute {
			if cur.Contains(st.doc.RootID()) {
				return st.dom()
			}
			return nil, nil
		}
		return cur, nil
	default:
		return nil, fmt.Errorf("wadler: cannot propagate through %T", e)
	}
}

func (st *state) propagateIDHead(e xpath.Expr, cur xmltree.NodeSet) (xmltree.NodeSet, error) {
	c, ok := e.(*xpath.Call)
	if !ok || c.Name != "id" {
		return nil, fmt.Errorf("wadler: unsupported path head %s", e)
	}
	if a, ok := c.Args[0].(*xpath.Path); ok {
		back := axes.EvalIDInverse(st.doc, cur)
		return st.propagateBackwards(a, back)
	}
	if a, ok := c.Args[0].(*xpath.Call); ok && a.Name == "id" {
		back := axes.EvalIDInverse(st.doc, cur)
		return st.propagateIDHead(a, back)
	}
	// Innermost context-independent argument: the head's value is
	// constant; the whole chain matches from every context node iff the
	// constant's extension intersects cur.
	v, err := st.evalScalar(c)
	if err != nil {
		return nil, err
	}
	if v.Kind != xpath.TypeNodeSet {
		return nil, fmt.Errorf("wadler: id head is not a node set")
	}
	if !v.Set.Intersect(cur).IsEmpty() {
		return st.dom()
	}
	return nil, nil
}

// propagateStepBackwards inverts one location step: restrict the target
// set to the node test, apply the predicates, then take χ⁻¹. Predicates
// that depend on position/size run in a loop over the pairs of
// previous/current context node, as in the appendix pseudocode.
func (st *state) propagateStepBackwards(step *xpath.Step, y xmltree.NodeSet) (xmltree.NodeSet, error) {
	yt, err := evalutil.FilterTestPar(st.context(), st.doc, step.Axis, step.Test, y, st.par)
	if err != nil {
		return nil, err
	}
	if len(yt) == 0 {
		return nil, nil
	}
	needPos := false
	for _, p := range step.Preds {
		if xpath.RelevantContext(p)&(xpath.RelevPos|xpath.RelevSize) != 0 {
			needPos = true
		}
	}
	if !needPos {
		for _, p := range step.Preds {
			var keep xmltree.NodeSet
			for _, n := range yt {
				if err := st.cancel.Check(); err != nil {
					return nil, err
				}
				v, err := st.evalPred(p, semantics.Context{Node: n, Pos: -1, Size: -1})
				if err != nil {
					return nil, err
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, n)
				}
			}
			yt = keep
			if len(yt) == 0 {
				return nil, nil
			}
		}
		return axes.EvalInversePar(st.context(), st.doc, step.Axis, yt, nil, st.par)
	}
	// Position-dependent: loop over previous context nodes x and their
	// candidate sets. Note the candidate set Z (and thus the context
	// size) must be computed over ALL candidates of x, not only those in
	// yt; positions refer to the unrestricted step result.
	xs, err := axes.EvalInversePar(st.context(), st.doc, step.Axis, yt, nil, st.par)
	if err != nil {
		return nil, err
	}
	if step.Axis == axes.Child && evalutil.ExactElementName(step.Axis, step.Test) && len(step.Preds) == 1 {
		// Index-served positions: child::name candidates are the name's
		// posting-list slice over x's subtree interval restricted to
		// direct children, already in document order — position() is the
		// rank in that scan and last() its length, with no candidate set
		// materialized or sorted. Compact the survivors of xs in place.
		k := 0
		for _, x := range xs {
			if err := st.cancel.Check(); err != nil {
				return nil, err
			}
			ok, err := st.childNamedSurvives(x, step.Test.Name, step.Preds[0], yt)
			if err != nil {
				return nil, err
			}
			if ok {
				xs[k] = x
				k++
			}
		}
		return xs[:k], nil
	}
	var out xmltree.NodeSet
	for _, x := range xs {
		if err := st.cancel.Check(); err != nil {
			return nil, err
		}
		z := evalutil.StepCandidates(st.doc, step.Axis, step.Test, x)
		for _, p := range step.Preds {
			ordered := evalutil.AxisOrdered(step.Axis, z)
			var keep []xmltree.NodeID
			for j, zn := range ordered {
				v, err := st.evalPred(p, semantics.Context{Node: zn, Pos: j + 1, Size: len(ordered)})
				if err != nil {
					return nil, err
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, zn)
				}
			}
			z = xmltree.NewNodeSet(keep...)
		}
		if !z.Intersect(yt).IsEmpty() {
			out = append(out, x)
		}
	}
	return xmltree.NewNodeSet(out...), nil
}

// childNamedSurvives reports whether a previous-context node x survives
// a positional child::name[pred] step: whether some direct child of x
// named name satisfies pred at its index-served (position, last) and
// lies in yt. The first pass over the posting-list slice counts the
// context size, the second evaluates the predicate at each rank; both
// are plain slice scans, so the check allocates nothing.
func (st *state) childNamedSurvives(x xmltree.NodeID, name string, pred xpath.Expr, yt xmltree.NodeSet) (bool, error) {
	ix := st.doc.Index()
	sub := ix.NamedRange(name, x+1, ix.SubtreeEnd(x))
	if err := st.cancel.CheckN(2 * len(sub)); err != nil { // both scans of the posting-list slice
		return false, err
	}
	size := 0
	for _, y := range sub {
		if st.doc.Parent(y) == x {
			size++
		}
	}
	if size == 0 {
		return false, nil
	}
	pos := 0
	for _, y := range sub {
		if st.doc.Parent(y) != x {
			continue
		}
		pos++
		if !yt.Contains(y) {
			continue
		}
		v, err := st.evalPred(pred, semantics.Context{Node: y, Pos: pos, Size: size})
		if err != nil {
			return false, err
		}
		if semantics.ToBoolean(v) {
			return true, nil
		}
	}
	return false, nil
}

// evalPred evaluates a predicate for a single context, consulting the
// precomputed bottom-up tables for any node-set parts.
func (st *state) evalPred(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	if vals, ok := st.pre[e]; ok {
		return semantics.Boolean(vals[c.Node]), nil
	}
	switch x := e.(type) {
	case *xpath.Number:
		return semantics.Number(x.Val), nil
	case *xpath.Literal:
		return semantics.String(x.Val), nil
	case *xpath.Negate:
		v, err := st.evalPred(x.X, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.Number(-semantics.ToNumber(st.doc, v)), nil
	case *xpath.Binary:
		l, err := st.evalPred(x.Left, c)
		if err != nil {
			return semantics.Value{}, err
		}
		r, err := st.evalPred(x.Right, c)
		if err != nil {
			return semantics.Value{}, err
		}
		switch {
		case x.Op == xpath.OpAnd:
			return semantics.Boolean(semantics.ToBoolean(l) && semantics.ToBoolean(r)), nil
		case x.Op == xpath.OpOr:
			return semantics.Boolean(semantics.ToBoolean(l) || semantics.ToBoolean(r)), nil
		case x.Op.IsRelOp():
			return semantics.Boolean(semantics.Compare(st.doc, x.Op, l, r)), nil
		case x.Op.IsArith():
			return semantics.Number(semantics.Arith(x.Op,
				semantics.ToNumber(st.doc, l), semantics.ToNumber(st.doc, r))), nil
		default:
			return semantics.Value{}, fmt.Errorf("wadler: operator %v in predicate", x.Op)
		}
	case *xpath.Call:
		switch x.Name {
		case "position":
			return semantics.Number(float64(c.Pos)), nil
		case "last":
			return semantics.Number(float64(c.Size)), nil
		}
		args := make([]semantics.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := st.evalPred(a, c)
			if err != nil {
				return semantics.Value{}, err
			}
			args[i] = v
		}
		return semantics.CallFunction(st.doc, x.Name, c, args)
	default:
		return semantics.Value{}, fmt.Errorf("wadler: unsupported predicate part %T", e)
	}
}
