package wadler

import (
	"testing"

	"repro/internal/semantics"
	"repro/internal/topdown"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestPropagateBackwardsDirect exercises propagate_path_backwards in
// isolation against brute force: X = {x | π(x) ∩ Y ≠ ∅}.
func TestPropagateBackwardsDirect(t *testing.T) {
	d := xmltree.MustParseString(
		`<a><b><c>1</c><c>2</c></b><b><c>3</c></b><d>2</d></a>`)
	td := topdown.New(d)
	st := &state{doc: d, pre: map[xpath.Expr][]bool{}, scalar: td}
	paths := []string{
		"child::c",
		"child::b/child::c",
		"descendant::c",
		"following-sibling::*/child::c",
		"child::c[position() = 2]",
		"child::c[last()]",
	}
	// Y = all text-value "2" nodes' parents… keep it simple: Y = all c
	// and d elements.
	var y xmltree.NodeSet
	for i := 0; i < d.Len(); i++ {
		n := xmltree.NodeID(i)
		if d.Name(n) == "c" || d.Name(n) == "d" {
			y = append(y, n)
		}
	}
	for _, q := range paths {
		p := xpath.MustParse(q).(*xpath.Path)
		got, err := st.propagateBackwards(p, y)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var want xmltree.NodeSet
		for i := 0; i < d.Len(); i++ {
			x := xmltree.NodeID(i)
			v, err := td.Evaluate(p, semantics.Context{Node: x, Pos: 1, Size: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !v.Set.Intersect(y).IsEmpty() {
				want = append(want, x)
			}
		}
		if !got.Equal(want) {
			t.Errorf("%s: backward %v, brute force %v", q, got, want)
		}
	}
}

// TestEvalBottomUpPathRelOps covers each RelOp and operand typing of
// eval_bottomup_path.
func TestEvalBottomUpPathRelOps(t *testing.T) {
	d := xmltree.MustParseString(
		`<a><b>5</b><b>10</b><b>15</b><c>x</c></a>`)
	ref := topdown.New(d)
	ev := New(d)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	queries := []string{
		"//*[child::b = 10]",
		"//*[child::b != 10]",
		"//*[child::b < 6]",
		"//*[child::b <= 5]",
		"//*[child::b > 14]",
		"//*[child::b >= 15]",
		"//*[child::b = '10']",
		"//*[child::c = 'x']",
		"//*[child::b = true()]",      // bool comparison route
		"//*[child::b = /a/child::c]", // nset constant side (context free)
		"//*[10 = child::b]",          // flipped operand order
		"//*[6 > child::b]",
	}
	for _, q := range queries {
		e := xpath.MustParse(q)
		want, err := ref.Evaluate(e, ctx)
		if err != nil {
			t.Fatalf("topdown(%q): %v", q, err)
		}
		got, err := ev.Evaluate(e, ctx)
		if err != nil {
			t.Errorf("%q: %v", q, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%q: optmincontext %+v, topdown %+v", q, got, want)
		}
		if ev.LastBottomUpPaths == 0 {
			t.Errorf("%q: expected at least one bottom-up path", q)
		}
	}
}

// TestPositionalPredicateInsideBottomUpPath covers the pair-loop branch
// of propagate_step_backwards.
func TestPositionalPredicateInsideBottomUpPath(t *testing.T) {
	d := xmltree.MustParseString(
		`<a><b><c>1</c><c>2</c></b><b><c>2</c><c>1</c></b></a>`)
	ref := topdown.New(d)
	ev := New(d)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	queries := []string{
		"//b[child::c[position() = 2] = '2']",
		"//b[child::c[last()] = 1]",
		"//b[child::c[position() != last()] = '1']",
	}
	for _, q := range queries {
		e := xpath.MustParse(q)
		want, err := ref.Evaluate(e, ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Evaluate(e, ctx)
		if err != nil {
			t.Errorf("%q: %v", q, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%q: optmincontext %+v, topdown %+v", q, got, want)
		}
	}
}

// TestIDChainRestriction3 exercises nested id() heads in bottom-up
// paths.
func TestIDChainRestriction3(t *testing.T) {
	d := xmltree.MustParseString(
		`<r id="top"><x id="one">two</x><y id="two">one</y></r>`)
	ref := topdown.New(d)
	ev := New(d)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	for _, q := range []string{
		"//*[boolean(id('one'))]",
		"//*[id('one')/child::text() = 'two']",
		"//*[boolean(id(id('one')))]",
	} {
		e := xpath.MustParse(q)
		want, err := ref.Evaluate(e, ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Evaluate(e, ctx)
		if err != nil {
			t.Errorf("%q: %v", q, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%q: got %+v, want %+v", q, got, want)
		}
	}
}
