package wadler

import (
	"testing"

	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const fig8 = `<a id="10"><b id="11"><c id="12">21 22</c><c id="13">23 24</c><d id="14">100</d></b><b id="21"><c id="22">11 12</c><d id="23">13 14</d><d id="24">100</d></b></a>`

func ctxRoot(d *xmltree.Document) semantics.Context {
	return semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
}

func TestFragmentClassification(t *testing.T) {
	inFragment := []string{
		// Core XPath is contained in the Extended Wadler Fragment
		// (Corollary 11.5 discussion).
		"/descendant::a/child::b[child::c/child::d or not(following::*)]",
		"//b[child::c]",
		// Positions and arithmetic on position()/last() (Wadler's
		// original fragment).
		"//b[position() != last()]",
		"//b[position() > last()*0.5]",
		"//b[position() mod 2 = 1]",
		// nset RelOp constant.
		"//*[. = '100']",
		"//*[child::c = '21 22']",
		"//*[self::* = 100]",
		// The paper's Example 11.2 query.
		"/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]",
		// id with constant argument (Restriction 3).
		"id('10')/child::b",
	}
	for _, q := range inFragment {
		if !InFragment(xpath.MustParse(q)) {
			t.Errorf("InFragment(%q) = false, want true", q)
		}
	}
	outOfFragment := []string{
		"count(//b)",                       // Restriction 2: count
		"//b[count(child::*) > 1]",         // count
		"sum(//b)",                         // sum
		"//*[child::a = child::b]",         // nset RelOp nset, both context dependent
		"//*[string(child::a) = 'x']",      // Restriction 1: string()
		"//*[name() = 'b']",                // Restriction 1: name()
		"//*[child::a = position()]",       // scalar depends on context
		"//*[string-length(child::a) = 2]", // Restriction 1
	}
	for _, q := range outOfFragment {
		if InFragment(xpath.MustParse(q)) {
			t.Errorf("InFragment(%q) = true, want false", q)
		}
	}
}

func TestExample112BottomUp(t *testing.T) {
	// Example 11.2 has two inner location paths (E5 and E14) that must
	// be evaluated bottom-up.
	d := xmltree.MustParseString(fig8)
	ev := New(d)
	q := "/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]"
	v, err := ev.Evaluate(xpath.MustParse(q), ctxRoot(d))
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.NewNodeSet(d.IDOf("11"), d.IDOf("12"), d.IDOf("13"),
		d.IDOf("14"), d.IDOf("22"))
	if !v.Set.Equal(want) {
		t.Errorf("result = %v, want %v", v.Set, want)
	}
	if ev.LastBottomUpPaths != 2 {
		t.Errorf("bottom-up paths = %d, want 2 (E5 and E14 of the example)", ev.LastBottomUpPaths)
	}
}

func TestBottomUpAgainstNaive(t *testing.T) {
	d := xmltree.MustParseString(fig8)
	ref := naive.New(d)
	ev := New(d)
	queries := []string{
		"//*[. = '100']",
		"//*[child::c = '21 22']",
		"//*[descendant::d = 100]",
		"//b[boolean(child::c)]",
		"//*[not(child::* = '100')]",
		"//*[following::* = 100]",
		"//*[preceding-sibling::*/preceding::* = 100]",
		"//*[child::c = '21 22' or child::d = '13 14']",
		"//c[. = '21 22'][position() = 1]",
		"id('11')/child::c",
		"//*[boolean(id('14'))]",
	}
	for _, q := range queries {
		e := xpath.MustParse(q)
		want, err := ref.Evaluate(e, ctxRoot(d))
		if err != nil {
			t.Fatalf("naive %q: %v", q, err)
		}
		got, err := ev.Evaluate(e, ctxRoot(d))
		if err != nil {
			t.Errorf("%q: %v", q, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%q: optmincontext = %+v, naive = %+v", q, got, want)
		}
	}
}

func TestFallbackOutsideFragment(t *testing.T) {
	// OptMinContext must still answer queries outside the fragment
	// (via MinContext), with no bottom-up paths collected for the
	// non-qualifying parts.
	d := xmltree.MustParseString(fig8)
	ev := New(d)
	ref := naive.New(d)
	for _, q := range []string{
		"count(//b)",
		"//b[count(child::*) > 1]",
		"sum(//d) + 1",
		"//*[string(child::c) = '21 22']",
	} {
		e := xpath.MustParse(q)
		want, err := ref.Evaluate(e, ctxRoot(d))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Evaluate(e, ctxRoot(d))
		if err != nil {
			t.Errorf("%q: %v", q, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%q: got %+v, want %+v", q, got, want)
		}
	}
}

// TestFragmentLattice verifies the Figure 1 inclusion: Core XPath ⊂
// Extended Wadler Fragment (every Core XPath query is Wadler), and both
// are proper subsets of XPath.
func TestFragmentLattice(t *testing.T) {
	coreQueries := []string{
		"/descendant::a/child::b",
		"//b[child::c]",
		"//*[not(child::*) and following::b]",
		"/descendant::a/child::b[child::c/child::d or not(following::*)]",
	}
	for _, q := range coreQueries {
		if !InFragment(xpath.MustParse(q)) {
			t.Errorf("Core XPath query %q must be in the Wadler fragment", q)
		}
	}
	// Wadler-but-not-Core: positions.
	wadlerOnly := "//b[position() != last()]"
	if !InFragment(xpath.MustParse(wadlerOnly)) {
		t.Errorf("%q should be Wadler", wadlerOnly)
	}
	// Full-XPath-only: count.
	full := "//b[count(child::*) > 1]"
	if InFragment(xpath.MustParse(full)) {
		t.Errorf("%q should not be Wadler", full)
	}
}
