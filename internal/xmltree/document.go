package xmltree

import (
	"sort"
	"strings"
	"sync"
)

// Document is an immutable XML document tree in the paper's data model.
// Nodes live in a dense arena indexed by NodeID; arena order is document
// order (the order of opening tags, with namespace and attribute nodes
// placed directly after their element, namespaces first — matching the
// XPath 1.0 document-order rules).
type Document struct {
	nodes []Node

	// ids maps an ID value to the element node carrying it, supporting
	// the deref_ids function of Section 4. Built from attributes whose
	// name is in the builder's IDAttributes set (default {"id"}).
	ids map[string]NodeID

	// ref is the auxiliary relation of Theorem 10.7: ref contains ⟨x,y⟩
	// iff the text *directly* inside x (not in descendants) contains a
	// whitespace-separated token equal to the ID of y. Stored as a
	// forward adjacency list plus its inverse.
	ref    map[NodeID][]NodeID
	refInv map[NodeID][]NodeID

	// strvalCache memoizes strval for element and root nodes, which is
	// the concatenation of descendant text (Section 4). strvalMu makes
	// the lazy fill safe for concurrent readers; everything else in a
	// Document is immutable after construction.
	strvalMu    sync.Mutex
	strvalCache []string
	strvalDone  []bool

	// idx is the lazily built structural index (subtree intervals, name
	// posting lists, evaluator scratch pool); see Index().
	idxOnce sync.Once
	idx     *Index
}

// Len returns |dom|, the number of nodes in the document.
func (d *Document) Len() int { return len(d.nodes) }

// RootID returns the NodeID of the root node (always 0).
func (d *Document) RootID() NodeID { return 0 }

// Node returns the node with the given ID. The returned pointer aliases
// the document's arena and must not be mutated.
func (d *Document) Node(id NodeID) *Node { return &d.nodes[id] }

// Type returns the node type of id.
func (d *Document) Type(id NodeID) NodeType { return d.nodes[id].Type }

// Name returns the node name of id.
func (d *Document) Name(id NodeID) string { return d.nodes[id].Name }

// FirstChild implements the primitive function firstchild: dom → dom.
func (d *Document) FirstChild(id NodeID) NodeID { return d.nodes[id].FirstChild }

// NextSibling implements the primitive function nextsibling: dom → dom.
func (d *Document) NextSibling(id NodeID) NodeID { return d.nodes[id].NextSibling }

// PrevSibling implements nextsibling⁻¹.
func (d *Document) PrevSibling(id NodeID) NodeID { return d.nodes[id].PrevSibling }

// Parent returns the parent node, or NilNode for the root. Note that in
// the abstract model parent = (nextsibling⁻¹)*.firstchild⁻¹; the arena
// stores it directly.
func (d *Document) Parent(id NodeID) NodeID { return d.nodes[id].Parent }

// FirstChildInv implements firstchild⁻¹: it returns the parent of id iff
// id is its parent's first child, and NilNode otherwise.
func (d *Document) FirstChildInv(id NodeID) NodeID {
	p := d.nodes[id].Parent
	if p != NilNode && d.nodes[p].FirstChild == id {
		return p
	}
	return NilNode
}

// Before reports whether a precedes b in document order (a <doc b).
func (d *Document) Before(a, b NodeID) bool { return a < b }

// StringValue computes strval (Section 4): for element and root nodes the
// concatenation of all descendant text nodes in document order; for text,
// comment and processing-instruction nodes their character data; for
// attribute and namespace nodes their value.
func (d *Document) StringValue(id NodeID) string {
	n := &d.nodes[id]
	switch n.Type {
	case Text, Comment:
		return n.Data
	case ProcInst:
		return n.Data
	case Attribute, Namespace:
		return n.Data
	}
	// Element or root: memoized concatenation of descendant text.
	d.strvalMu.Lock()
	if d.strvalDone[id] {
		s := d.strvalCache[id]
		d.strvalMu.Unlock()
		return s
	}
	d.strvalMu.Unlock()
	var b strings.Builder
	d.appendText(id, &b)
	s := b.String()
	d.strvalMu.Lock()
	d.strvalCache[id] = s
	d.strvalDone[id] = true
	d.strvalMu.Unlock()
	return s
}

func (d *Document) appendText(id NodeID, b *strings.Builder) {
	for c := d.nodes[id].FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
		switch d.nodes[c].Type {
		case Text:
			b.WriteString(d.nodes[c].Data)
		case Element:
			d.appendText(c, b)
		}
	}
}

// DirectText returns the concatenation of text directly inside id (not in
// descendants). Used to build the ref relation of Theorem 10.7.
func (d *Document) DirectText(id NodeID) string {
	var b strings.Builder
	for c := d.nodes[id].FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
		if d.nodes[c].Type == Text {
			b.WriteString(d.nodes[c].Data)
		}
	}
	return b.String()
}

// DerefIDs implements deref_ids: string → 2^dom (Section 4). The input is
// interpreted as a whitespace-separated list of keys; the result is the
// set of nodes whose IDs are in the list, sorted in document order.
func (d *Document) DerefIDs(s string) []NodeID {
	var out []NodeID
	seen := map[NodeID]bool{}
	for _, key := range strings.Fields(s) {
		if n, ok := d.ids[key]; ok && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IDOf returns the element registered under the given ID, or NilNode.
func (d *Document) IDOf(key string) NodeID {
	if n, ok := d.ids[key]; ok {
		return n
	}
	return NilNode
}

// Ref returns the nodes referenced from x via the ref relation
// (Theorem 10.7): nodes whose ID appears as a whitespace-separated token
// in the text directly inside x.
func (d *Document) Ref(x NodeID) []NodeID { return d.ref[x] }

// RefInv returns the nodes that reference y via the ref relation.
func (d *Document) RefInv(y NodeID) []NodeID { return d.refInv[y] }

// Attributes returns the attribute nodes of an element in document order.
func (d *Document) Attributes(id NodeID) []NodeID {
	var out []NodeID
	for c := d.nodes[id].FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
		if d.nodes[c].Type == Attribute {
			out = append(out, c)
		}
	}
	return out
}

// Attr returns the value of the named attribute of element id and whether
// it is present.
func (d *Document) Attr(id NodeID, name string) (string, bool) {
	for c := d.nodes[id].FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
		if d.nodes[c].Type == Attribute && d.nodes[c].Name == name {
			return d.nodes[c].Data, true
		}
	}
	return "", false
}

// Children returns the regular (non-attribute, non-namespace) children of
// id in document order.
func (d *Document) Children(id NodeID) []NodeID {
	var out []NodeID
	for c := d.nodes[id].FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
		if !d.nodes[c].IsAttrOrNS() {
			out = append(out, c)
		}
	}
	return out
}

// DocumentElement returns the document element (the single element child
// of the root), or NilNode for a pathological empty document.
func (d *Document) DocumentElement() NodeID {
	for c := d.nodes[0].FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
		if d.nodes[c].Type == Element {
			return c
		}
	}
	return NilNode
}

// Lang returns the value of the nearest xml:lang attribute on id or an
// ancestor, supporting the lang() core function.
func (d *Document) Lang(id NodeID) string {
	for n := id; n != NilNode; n = d.nodes[n].Parent {
		if d.nodes[n].Type != Element {
			continue
		}
		if v, ok := d.Attr(n, "xml:lang"); ok {
			return v
		}
	}
	return ""
}

// Names returns the set of distinct element names in the document. Used
// by the XPatterns first-of-type/last-of-type predicates (Theorem 10.8),
// whose precomputation is O(|D|·|Σ|).
func (d *Document) Names() []string {
	seen := map[string]bool{}
	var out []string
	for i := range d.nodes {
		if d.nodes[i].Type == Element && !seen[d.nodes[i].Name] {
			seen[d.nodes[i].Name] = true
			out = append(out, d.nodes[i].Name)
		}
	}
	sort.Strings(out)
	return out
}
