package xmltree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// setFromBytes builds a NodeSet over a 256-bit universe from raw fuzz
// bytes, so every byte is a valid member.
func setFromBytes(raw []byte) NodeSet {
	var ids []NodeID
	for _, v := range raw {
		ids = append(ids, NodeID(v))
	}
	return NewNodeSet(ids...)
}

// TestBitsetOpsMatchNodeSet asserts the word-parallel operations agree
// exactly with the sorted-merge NodeSet reference implementations.
func TestBitsetOpsMatchNodeSet(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	check := func(name string, f func(a, b []byte) bool) {
		t.Helper()
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	const n = 256
	check("union", func(a, b []byte) bool {
		sa, sb := setFromBytes(a), setFromBytes(b)
		ba := NewBitset(n).FromNodeSet(sa)
		ba.UnionWith(NewBitset(n).FromNodeSet(sb))
		return ba.ToNodeSet().Equal(sa.Union(sb))
	})
	check("intersect", func(a, b []byte) bool {
		sa, sb := setFromBytes(a), setFromBytes(b)
		ba := NewBitset(n).FromNodeSet(sa)
		ba.IntersectWith(NewBitset(n).FromNodeSet(sb))
		return ba.ToNodeSet().Equal(sa.Intersect(sb))
	})
	check("minus", func(a, b []byte) bool {
		sa, sb := setFromBytes(a), setFromBytes(b)
		ba := NewBitset(n).FromNodeSet(sa)
		ba.MinusWith(NewBitset(n).FromNodeSet(sb))
		return ba.ToNodeSet().Equal(sa.Minus(sb))
	})
	check("count-any", func(a, _ []byte) bool {
		sa := setFromBytes(a)
		ba := NewBitset(n).FromNodeSet(sa)
		return ba.Count() == len(sa) && ba.Any() == (len(sa) > 0)
	})
	check("intersect-set", func(a, b []byte) bool {
		sa, sb := setFromBytes(a), setFromBytes(b)
		bb := NewBitset(n).FromNodeSet(sb)
		return bb.IntersectSet(sa, nil).Equal(sa.Intersect(sb))
	})
}

// TestBitsetComplementFill pins the tail-masking invariant on universes
// that do not fall on word boundaries.
func TestBitsetComplementFill(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 127, 128, 200} {
		b := NewBitset(n)
		b.Fill()
		if b.Count() != n {
			t.Fatalf("Fill on n=%d: count %d", n, b.Count())
		}
		b.Complement()
		if b.Any() {
			t.Fatalf("Complement of full n=%d not empty", n)
		}
		b.Add(0)
		b.Complement()
		if b.Count() != n-1 || b.Has(0) {
			t.Fatalf("Complement on n=%d wrong: count=%d has0=%v", n, b.Count(), b.Has(0))
		}
	}
}

// TestBitsetAddRange checks the word-parallel interval fill against a
// bit-at-a-time loop over random and boundary-straddling intervals.
func TestBitsetAddRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n = 300
	cases := [][2]NodeID{{0, 0}, {0, 1}, {0, 64}, {63, 65}, {64, 128}, {5, 300}, {299, 300}}
	for i := 0; i < 200; i++ {
		lo := NodeID(r.Intn(n))
		cases = append(cases, [2]NodeID{lo, lo + NodeID(r.Intn(n-int(lo)+1))})
	}
	for _, c := range cases {
		lo, hi := c[0], c[1]
		got := NewBitset(n)
		got.AddRange(lo, hi)
		want := NewBitset(n)
		for id := lo; id < hi; id++ {
			want.Add(id)
		}
		if !got.Equal(want) {
			t.Fatalf("AddRange(%d,%d) = %v, want %v", lo, hi, got.ToNodeSet(), want.ToNodeSet())
		}
	}
}

// FuzzBitsetAlgebra cross-checks the packed ops against the NodeSet
// sorted-merge reference on fuzzer-chosen inputs.
func FuzzBitsetAlgebra(f *testing.F) {
	f.Add([]byte{0, 1, 2}, []byte{2, 3})
	f.Add([]byte{}, []byte{255})
	f.Add([]byte{63, 64, 65, 127, 128}, []byte{64, 128, 192})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		sa, sb := setFromBytes(a), setFromBytes(b)
		const n = 256
		ba, bb := NewBitset(n).FromNodeSet(sa), NewBitset(n).FromNodeSet(sb)
		u := ba.Clone()
		u.UnionWith(bb)
		if !u.ToNodeSet().Equal(sa.Union(sb)) {
			t.Fatalf("union mismatch: %v ∪ %v", sa, sb)
		}
		i := ba.Clone()
		i.IntersectWith(bb)
		if !i.ToNodeSet().Equal(sa.Intersect(sb)) {
			t.Fatalf("intersect mismatch: %v ∩ %v", sa, sb)
		}
		m := ba.Clone()
		m.MinusWith(bb)
		if !m.ToNodeSet().Equal(sa.Minus(sb)) {
			t.Fatalf("minus mismatch: %v − %v", sa, sb)
		}
		nb := ba.Clone()
		nb.Complement()
		var dom NodeSet
		for id := 0; id < n; id++ {
			dom = append(dom, NodeID(id))
		}
		if !nb.ToNodeSet().Equal(dom.Minus(sa)) {
			t.Fatalf("complement mismatch: dom − %v", sa)
		}
	})
}
