package xmltree

import (
	"strings"
	"testing"
)

// fig8 is the sample XML document of Figure 8 in the paper.
const fig8 = `<?xml version="1.0"?>
<a id="10">
  <b id="11">
    <c id="12">21 22</c>
    <c id="13">23 24</c>
    <d id="14">100</d>
  </b>
  <b id="21">
    <c id="22">11 12</c>
    <d id="23">13 14</d>
    <d id="24">100</d>
  </b>
</a>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return d
}

func TestParseDoc4(t *testing.T) {
	// DOC(4) of Section 2: <a><b/><b/><b/><b/></a> has 6 nodes
	// including the root (Example 4.1).
	d := mustParse(t, "<a><b/><b/><b/><b/></a>")
	if d.Len() != 6 {
		t.Fatalf("DOC(4) node count = %d, want 6", d.Len())
	}
	if d.Type(0) != Root {
		t.Errorf("node 0 type = %v, want root", d.Type(0))
	}
	a := d.DocumentElement()
	if d.Name(a) != "a" {
		t.Errorf("document element name = %q, want a", d.Name(a))
	}
	kids := d.Children(a)
	if len(kids) != 4 {
		t.Fatalf("children of a = %d, want 4", len(kids))
	}
	for _, k := range kids {
		if d.Name(k) != "b" || d.Type(k) != Element {
			t.Errorf("child %d: name=%q type=%v, want b/element", k, d.Name(k), d.Type(k))
		}
	}
}

func TestPrimitiveRelations(t *testing.T) {
	d := mustParse(t, "<a><b/><b/></a>")
	a := d.DocumentElement()
	b1 := d.FirstChild(a)
	b2 := d.NextSibling(b1)
	if b1 == NilNode || b2 == NilNode {
		t.Fatal("missing children")
	}
	if d.NextSibling(b2) != NilNode {
		t.Error("b2 should have no next sibling")
	}
	if d.PrevSibling(b2) != b1 {
		t.Error("nextsibling inverse broken")
	}
	if d.FirstChildInv(b1) != a {
		t.Error("firstchild inverse of first child should be parent")
	}
	if d.FirstChildInv(b2) != NilNode {
		t.Error("firstchild inverse of non-first child should be nil")
	}
	if d.Parent(b1) != a || d.Parent(b2) != a {
		t.Error("parent links broken")
	}
	if d.Parent(d.RootID()) != NilNode {
		t.Error("root parent should be nil")
	}
}

func TestDocumentOrderIsArenaOrder(t *testing.T) {
	d := mustParse(t, "<a><b><c/></b><d/></a>")
	// Opening-tag order: root, a, b, c, d.
	names := []string{"", "a", "b", "c", "d"}
	if d.Len() != 5 {
		t.Fatalf("len = %d, want 5", d.Len())
	}
	for i, want := range names {
		if d.Name(NodeID(i)) != want {
			t.Errorf("node %d name = %q, want %q", i, d.Name(NodeID(i)), want)
		}
	}
}

func TestStringValue(t *testing.T) {
	d := mustParse(t, `<a>one<b>two</b><c><d>three</d></c>four</a>`)
	a := d.DocumentElement()
	if got := d.StringValue(a); got != "onetwothreefour" {
		t.Errorf("strval(a) = %q", got)
	}
	if got := d.StringValue(d.RootID()); got != "onetwothreefour" {
		t.Errorf("strval(root) = %q", got)
	}
	b := d.Children(a)[1]
	if got := d.StringValue(b); got != "two" {
		t.Errorf("strval(b) = %q", got)
	}
	// Memoized second call must agree.
	if got := d.StringValue(a); got != "onetwothreefour" {
		t.Errorf("memoized strval(a) = %q", got)
	}
}

func TestAttributesAndIDs(t *testing.T) {
	d := mustParse(t, fig8)
	a := d.DocumentElement()
	if v, ok := d.Attr(a, "id"); !ok || v != "10" {
		t.Errorf("a/@id = %q, %v", v, ok)
	}
	// Figure 8 has 10 element/root nodes plus 9 attribute nodes plus
	// 6 text nodes = 25 total.
	if d.Len() != 25 {
		t.Errorf("node count = %d, want 25", d.Len())
	}
	x14 := d.IDOf("14")
	if x14 == NilNode || d.Name(x14) != "d" {
		t.Fatalf("IDOf(14) = %v (%s)", x14, d.Name(x14))
	}
	if got := d.StringValue(x14); got != "100" {
		t.Errorf("strval(x14) = %q", got)
	}
	set := d.DerefIDs("14 23  99  12")
	if len(set) != 3 {
		t.Fatalf("DerefIDs = %v, want 3 nodes", set)
	}
	for i := 1; i < len(set); i++ {
		if set[i-1] >= set[i] {
			t.Error("DerefIDs result not in document order")
		}
	}
}

func TestRefRelation(t *testing.T) {
	// The example under Theorem 10.7: <t id=1> 3 <t id=2> 1 </t>
	// <t id=3> 1 2 </t> </t> gives ref = {(n1,n3),(n2,n1),(n3,n1),(n3,n2)}.
	d := mustParse(t, `<t id="1"> 3 <t id="2"> 1 </t><t id="3"> 1 2 </t></t>`)
	n1, n2, n3 := d.IDOf("1"), d.IDOf("2"), d.IDOf("3")
	if n1 == NilNode || n2 == NilNode || n3 == NilNode {
		t.Fatal("ids not indexed")
	}
	check := func(x NodeID, want []NodeID) {
		t.Helper()
		got := d.Ref(x)
		if len(got) != len(want) {
			t.Fatalf("ref(%v) = %v, want %v", x, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ref(%v) = %v, want %v", x, got, want)
			}
		}
	}
	check(n1, []NodeID{n3})
	check(n2, []NodeID{n1})
	check(n3, []NodeID{n1, n2})
	if got := d.RefInv(n1); len(got) != 2 {
		t.Errorf("refInv(n1) = %v, want 2 entries", got)
	}
}

func TestCommentsAndPIs(t *testing.T) {
	d := mustParse(t, `<a><!--note--><?target body?><b/></a>`)
	a := d.DocumentElement()
	kids := d.Children(a)
	if len(kids) != 3 {
		t.Fatalf("children = %d, want 3", len(kids))
	}
	if d.Type(kids[0]) != Comment || d.StringValue(kids[0]) != "note" {
		t.Errorf("comment node wrong: %v %q", d.Type(kids[0]), d.StringValue(kids[0]))
	}
	if d.Type(kids[1]) != ProcInst || d.Name(kids[1]) != "target" {
		t.Errorf("PI node wrong: %v %q", d.Type(kids[1]), d.Name(kids[1]))
	}
	if d.Type(kids[2]) != Element {
		t.Errorf("element child wrong: %v", d.Type(kids[2]))
	}
}

func TestNamespaceNodes(t *testing.T) {
	d := mustParse(t, `<a xmlns:p="urn:x" p:q="v"><p:b/></a>`)
	a := d.DocumentElement()
	var nsCount, attrCount int
	for c := d.FirstChild(a); c != NilNode; c = d.NextSibling(c) {
		switch d.Type(c) {
		case Namespace:
			nsCount++
			if d.Name(c) != "p" || d.Node(c).Data != "urn:x" {
				t.Errorf("namespace node = %q %q", d.Name(c), d.Node(c).Data)
			}
		case Attribute:
			attrCount++
			if d.Name(c) != "p:q" {
				t.Errorf("attribute name = %q", d.Name(c))
			}
		}
	}
	if nsCount != 1 || attrCount != 1 {
		t.Errorf("ns=%d attr=%d, want 1/1", nsCount, attrCount)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a>",
		"<a></b>",
		"just text",
		"<a></a><b></b>", // two document elements is accepted by RawToken; ensure well-formedness of each
	}
	for _, c := range cases[:4] {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestWhitespaceHandling(t *testing.T) {
	src := "<a>\n  <b/>\n</a>"
	d := mustParse(t, src)
	if got := len(d.Children(d.DocumentElement())); got != 1 {
		t.Errorf("default parse children = %d, want 1 (whitespace dropped)", got)
	}
	d2, err := ParseWithOptions(strings.NewReader(src), ParseOptions{KeepWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d2.Children(d2.DocumentElement())); got != 3 {
		t.Errorf("keep-ws parse children = %d, want 3", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := `<a id="10"><b>x &amp; y</b><!--c--><?pi data?><c/></a>`
	d := mustParse(t, src)
	out := d.XMLString()
	d2 := mustParse(t, out)
	if d.Len() != d2.Len() {
		t.Fatalf("round trip node count %d != %d\nout=%s", d.Len(), d2.Len(), out)
	}
	for i := 0; i < d.Len(); i++ {
		n1, n2 := d.Node(NodeID(i)), d2.Node(NodeID(i))
		if n1.Type != n2.Type || n1.Name != n2.Name || n1.Data != n2.Data {
			t.Errorf("node %d differs: %+v vs %+v", i, n1, n2)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.StartElement("a")
	if _, err := b.Done(); err == nil {
		t.Error("Done with open element should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("EndElement at root should panic")
		}
	}()
	NewBuilder().EndElement()
}

func TestNodeTypeStrings(t *testing.T) {
	want := map[NodeType]string{
		Root: "root", Element: "element", Text: "text", Comment: "comment",
		Attribute: "attribute", Namespace: "namespace",
		ProcInst: "processing-instruction",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), s)
		}
	}
	if !Element.HasName() || Text.HasName() || Comment.HasName() || Root.HasName() {
		t.Error("HasName wrong")
	}
}

func TestLang(t *testing.T) {
	d := mustParse(t, `<a xml:lang="en"><b><c/></b><d xml:lang="de"/></a>`)
	a := d.DocumentElement()
	kids := d.Children(a)
	b := kids[0]
	c := d.Children(b)[0]
	dd := kids[1]
	if d.Lang(c) != "en" {
		t.Errorf("lang(c) = %q, want en", d.Lang(c))
	}
	if d.Lang(dd) != "de" {
		t.Errorf("lang(d) = %q, want de", d.Lang(dd))
	}
}

func TestNames(t *testing.T) {
	d := mustParse(t, `<a><b/><c/><b/></a>`)
	got := d.Names()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}
