package xmltree

import "math/bits"

// Bitset is a packed, word-parallel boolean set over dom: bit i is node
// i. It replaces the earlier []bool bitmap and is the workhorse set
// representation of the linear-time Core XPath algebra (Section 10.1),
// where every set operation must run in O(|dom|) — the packed form runs
// them in O(|dom|/64) machine words. A Bitset is created for a fixed
// universe size and all binary operations require both operands to share
// that size.
type Bitset struct {
	words []uint64
	n     int // universe size |dom| in bits
}

const wordBits = 64

// NewBitset returns an empty bitset over a universe of n nodes.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the universe size |dom| the bitset ranges over.
func (b *Bitset) Len() int { return b.n }

// Reset grows (or re-slices) the bitset to a universe of n nodes and
// clears it. The backing array is reused when capacity allows, which is
// what keeps pooled evaluator scratch allocation-free in steady state.
func (b *Bitset) Reset(n int) {
	w := (n + wordBits - 1) / wordBits
	if cap(b.words) < w {
		b.words = make([]uint64, w)
	} else {
		b.words = b.words[:w]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// Add inserts id into the set.
func (b *Bitset) Add(id NodeID) { b.words[id/wordBits] |= 1 << (uint(id) % wordBits) }

// Remove deletes id from the set.
func (b *Bitset) Remove(id NodeID) { b.words[id/wordBits] &^= 1 << (uint(id) % wordBits) }

// Has reports membership in constant time.
func (b *Bitset) Has(id NodeID) bool {
	return b.words[id/wordBits]&(1<<(uint(id)%wordBits)) != 0
}

// Clear empties the set, keeping its universe size.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill makes the set equal to dom (all n bits set).
func (b *Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// trim zeroes the tail bits of the last word beyond the universe size,
// the invariant every word-parallel operation relies on for Count/Any.
func (b *Bitset) trim() {
	if tail := uint(b.n) % wordBits; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << tail) - 1
	}
}

// UnionWith sets b = b ∪ c word-parallel.
func (b *Bitset) UnionWith(c *Bitset) {
	for i, w := range c.words {
		b.words[i] |= w
	}
}

// IntersectWith sets b = b ∩ c word-parallel.
func (b *Bitset) IntersectWith(c *Bitset) {
	for i, w := range c.words {
		b.words[i] &= w
	}
}

// MinusWith sets b = b − c word-parallel.
func (b *Bitset) MinusWith(c *Bitset) {
	for i, w := range c.words {
		b.words[i] &^= w
	}
}

// Complement sets b = dom − b word-parallel.
func (b *Bitset) Complement() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
}

// Any reports whether the set is non-empty.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns |b| via per-word popcount.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports set equality. The universes must match.
func (b *Bitset) Equal(c *Bitset) bool {
	if b.n != c.n {
		return false
	}
	for i, w := range b.words {
		if w != c.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...), n: b.n}
}

// AddRange inserts the half-open interval [lo, hi) word-parallel: full
// interior words are set with one store each, so an interval fill costs
// O(len/64) — the bitset form of a subtree-interval fill, for callers
// that consume axis images as bitsets rather than ordered NodeSets.
func (b *Bitset) AddRange(lo, hi NodeID) {
	if lo >= hi {
		return
	}
	lw, hw := int(lo)/wordBits, int(hi-1)/wordBits
	lmask := ^uint64(0) << (uint(lo) % wordBits)
	hmask := ^uint64(0) >> (wordBits - 1 - uint(hi-1)%wordBits)
	if lw == hw {
		b.words[lw] |= lmask & hmask
		return
	}
	b.words[lw] |= lmask
	for i := lw + 1; i < hw; i++ {
		b.words[i] = ^uint64(0)
	}
	b.words[hw] |= hmask
}

// AddSet inserts every member of s.
func (b *Bitset) AddSet(s NodeSet) {
	for _, id := range s {
		b.Add(id)
	}
}

// FromNodeSet clears the set and fills it with the members of s.
func (b *Bitset) FromNodeSet(s NodeSet) *Bitset {
	b.Clear()
	b.AddSet(s)
	return b
}

// AppendTo appends the members in ascending (document) order to dst via
// a trailing-zero scan — O(|dom|/64 + output) — and returns the
// extended slice. Passing a reused dst[:0] keeps the conversion
// allocation-free in steady state.
func (b *Bitset) AppendTo(dst NodeSet) NodeSet {
	for i, w := range b.words {
		base := NodeID(i * wordBits)
		for w != 0 {
			dst = append(dst, base+NodeID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// ToNodeSet converts the bitset to a freshly allocated sorted NodeSet.
func (b *Bitset) ToNodeSet() NodeSet {
	return b.AppendTo(make(NodeSet, 0, b.Count()))
}

// IntersectSet returns s ∩ b, preserving s's order, appending to dst
// (which may be s[:0] when s is dead after the call).
func (b *Bitset) IntersectSet(s NodeSet, dst NodeSet) NodeSet {
	for _, id := range s {
		if b.Has(id) {
			dst = append(dst, id)
		}
	}
	return dst
}

// Accumulator unions many NodeSets through a bitset: n-way unions cost
// O(Σ|sᵢ| + |dom|/64) instead of the O(Σᵢ i·|sᵢ|) of chained sorted
// merges. The context-value-table engines use it to compose step
// relations. The zero value is unusable; make one with NewAccumulator
// and Reset it between unions (Reset cost is proportional to the words
// the previous union touched, via the tracked word range).
type Accumulator struct {
	b        Bitset
	total    int
	loW, hiW int // touched word range [loW, hiW)
}

// NewAccumulator returns an accumulator over a universe of n nodes.
func NewAccumulator(n int) *Accumulator {
	a := &Accumulator{}
	a.b.Reset(n)
	a.loW = len(a.b.words)
	return a
}

// Reset clears the accumulator for the next union.
func (a *Accumulator) Reset() {
	for i := a.loW; i < a.hiW; i++ {
		a.b.words[i] = 0
	}
	a.total, a.loW, a.hiW = 0, len(a.b.words), 0
}

// Add unions s into the accumulator.
func (a *Accumulator) Add(s NodeSet) {
	if len(s) == 0 {
		return
	}
	a.total += len(s)
	if w := int(s[0]) / wordBits; w < a.loW {
		a.loW = w
	}
	if w := int(s[len(s)-1])/wordBits + 1; w > a.hiW {
		a.hiW = w
	}
	for _, id := range s {
		a.b.Add(id)
	}
}

// Result materializes the union as a freshly allocated sorted NodeSet
// and resets the accumulator. Capacity is sized by the (duplicate
// counting) running total, an upper bound on the union's size.
func (a *Accumulator) Result() NodeSet {
	if a.total == 0 {
		a.Reset()
		return nil
	}
	dst := make(NodeSet, 0, a.total)
	for i := a.loW; i < a.hiW; i++ {
		w := a.b.words[i]
		base := NodeID(i * wordBits)
		for w != 0 {
			dst = append(dst, base+NodeID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	a.Reset()
	return dst
}
