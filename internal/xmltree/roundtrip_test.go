package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// genDoc builds a random document with text content drawn from
// characters that exercise the serializer's escaping.
func genDoc(r *rand.Rand) *Document {
	chars := []rune{'a', 'b', '<', '>', '&', '"', '\'', ' ', '1'}
	randText := func() string {
		n := 1 + r.Intn(6)
		out := make([]rune, n)
		for i := range out {
			out[i] = chars[r.Intn(len(chars))]
		}
		return string(out)
	}
	b := NewBuilder()
	b.StartElement("root")
	// Adjacent text nodes cannot survive an XML round trip (the
	// serialization concatenates them); emit at most one in a row.
	lastWasText := false
	var build func(depth int)
	build = func(depth int) {
		for i := r.Intn(4); i > 0; i-- {
			choice := r.Intn(5)
			if choice == 0 && lastWasText {
				choice = 4
			}
			lastWasText = choice == 0
			switch choice {
			case 0:
				b.Text(randText())
			case 1:
				b.StartElement(string(rune('a' + r.Intn(3))))
				if r.Intn(2) == 0 {
					b.Attribute("k", randText())
				}
				if depth < 3 {
					build(depth + 1)
				}
				b.EndElement()
			case 2:
				b.Comment("c" + string(rune('0'+r.Intn(10))))
			case 3:
				b.ProcInst("pi", "data")
			default:
				b.StartElement("leaf")
				b.EndElement()
			}
		}
	}
	build(0)
	b.EndElement()
	return b.MustDone()
}

// TestSerializeParseRoundTrip: WriteXML followed by Parse reproduces
// the tree, node for node, including escaped text and attribute values.
func TestSerializeParseRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genDoc(r))
		},
	}
	if err := quick.Check(func(d *Document) bool {
		out := d.XMLString()
		d2, err := ParseWithOptions(
			// Whitespace-only text must survive the round trip.
			readerOf(out), ParseOptions{KeepWhitespaceText: true})
		if err != nil {
			t.Logf("re-parse failed: %v\nxml: %s", err, out)
			return false
		}
		if d.Len() != d2.Len() {
			t.Logf("node count %d != %d\nxml: %s", d.Len(), d2.Len(), out)
			return false
		}
		for i := 0; i < d.Len(); i++ {
			n1, n2 := d.Node(NodeID(i)), d2.Node(NodeID(i))
			if n1.Type != n2.Type || n1.Name != n2.Name || n1.Data != n2.Data ||
				n1.Parent != n2.Parent || n1.FirstChild != n2.FirstChild ||
				n1.NextSibling != n2.NextSibling {
				t.Logf("node %d differs: %+v vs %+v\nxml: %s", i, n1, n2, out)
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestStringValueStability: strval is identical before and after a
// serialization round trip (they are computed from the same tree).
func TestStringValueStability(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genDoc(r))
		},
	}
	if err := quick.Check(func(d *Document) bool {
		d2, err := ParseWithOptions(readerOf(d.XMLString()), ParseOptions{KeepWhitespaceText: true})
		if err != nil {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			if d.StringValue(NodeID(i)) != d2.StringValue(NodeID(i)) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func readerOf(s string) *strings.Reader { return strings.NewReader(s) }
