package xmltree

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file is the multicore substrate under the evaluation engines: a
// small shared worker pool plus word-range-parallel variants of the
// Bitset algebra and the Accumulator flush. The preorder arena makes
// the parallelism embarrassing — bitset words and subtree intervals
// partition cleanly — so the paper's per-core linear-time bound is
// preserved while the constant divides by the worker count.
//
// Design rules, shared with internal/axes/par.go:
//
//   - The pool is global and lazily grown (never shrunk); workers block
//     on a task channel and are reused across queries, so a parallel
//     operation costs two small allocations (job header + closure), not
//     a goroutine spawn per call.
//   - Task offers are non-blocking and the calling goroutine always
//     participates, so a saturated pool degrades to sequential
//     execution on the caller and nested ParDo calls cannot deadlock.
//   - Completion is tracked per chunk, not per helper: a job token left
//     in the queue behind other work cannot delay the caller once the
//     chunks are done (a late worker sees no chunks left and moves on).
//   - Every parallel entry point takes an explicit worker budget p and
//     falls back to the sequential implementation when p <= 1 or the
//     operand is below a size threshold, so small documents never pay
//     goroutine handoff latency.

// ParMinWords is the bitset size floor, in 64-bit words, below which
// the Par* word-parallel operations run sequentially. A word op streams
// at memory bandwidth, so only operands past ~32 KiB can amortize the
// microsecond-scale cost of waking pool workers.
const ParMinWords = 4096

// maxPar bounds the per-operation worker budget (and thus the lazily
// grown shared pool) regardless of what a caller passes.
const maxPar = 64

var (
	parTasks   = make(chan *parJob, 4*maxPar)
	parSpawned atomic.Int32
	parMu      sync.Mutex
)

// parJob is one ParDo invocation: helpers claim chunk indices from a
// shared counter (work stealing, so uneven chunks balance) and the
// WaitGroup counts completed chunks. Jobs are not reused: a stale token
// drained from the queue after the caller returned may still touch next
// and chunks, so the job must stay immutable once published.
type parJob struct {
	fn     func(int)
	chunks int32
	next   atomic.Int32
	wg     sync.WaitGroup
}

func (j *parJob) run() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.chunks {
			return
		}
		j.fn(int(i))
		j.wg.Done()
	}
}

// ensureWorkers grows the shared pool to at least n blocked workers.
func ensureWorkers(n int) {
	if int(parSpawned.Load()) >= n {
		return
	}
	parMu.Lock()
	for int(parSpawned.Load()) < n {
		parSpawned.Add(1)
		go func() {
			for j := range parTasks {
				j.run()
			}
		}()
	}
	parMu.Unlock()
}

// ParDo runs fn(k) for every chunk k in [0, chunks), spread over up to
// p goroutines: up to p-1 shared pool workers plus the calling
// goroutine, which always participates. Chunks are claimed from a
// shared counter, so helpers that start late (or never arrive, when
// the pool is saturated) only shift work onto the others; fn(k) is
// invoked exactly once per chunk either way. ParDo returns when every
// chunk has completed. p <= 1 (or a single chunk) runs fn inline with
// no synchronization at all.
func ParDo(p, chunks int, fn func(int)) {
	if chunks <= 0 {
		return
	}
	if p > maxPar {
		p = maxPar
	}
	if p > chunks {
		p = chunks
	}
	if p <= 1 {
		for i := 0; i < chunks; i++ {
			fn(i)
		}
		return
	}
	j := &parJob{fn: fn, chunks: int32(chunks)}
	j.wg.Add(chunks)
	ensureWorkers(p - 1)
	for i := 0; i < p-1; i++ {
		select {
		case parTasks <- j:
		default:
			// Queue full: the pool is saturated with other jobs; the
			// caller (and any helper that does arrive) absorbs the
			// chunks instead of blocking here.
		}
	}
	j.run()
	j.wg.Wait()
}

// chunkBounds splits [0, n) into `chunks` near-equal half-open ranges
// and returns the k-th.
func chunkBounds(n, chunks, k int) (lo, hi int) {
	return k * n / chunks, (k + 1) * n / chunks
}

// ParUnion sets b = b ∪ c like UnionWith, splitting the word range
// across the shared pool. Results are bit-identical to UnionWith for
// any p: chunks write disjoint word ranges.
func (b *Bitset) ParUnion(c *Bitset, p int) {
	bw, cw := b.words, c.words
	if p <= 1 || len(cw) < ParMinWords {
		b.UnionWith(c)
		return
	}
	ParDo(p, p, func(k int) {
		lo, hi := chunkBounds(len(cw), p, k)
		for i := lo; i < hi; i++ {
			bw[i] |= cw[i]
		}
	})
}

// ParIntersect sets b = b ∩ c like IntersectWith, word-range parallel.
func (b *Bitset) ParIntersect(c *Bitset, p int) {
	bw, cw := b.words, c.words
	if p <= 1 || len(cw) < ParMinWords {
		b.IntersectWith(c)
		return
	}
	ParDo(p, p, func(k int) {
		lo, hi := chunkBounds(len(cw), p, k)
		for i := lo; i < hi; i++ {
			bw[i] &= cw[i]
		}
	})
}

// ParMinus sets b = b − c like MinusWith, word-range parallel.
func (b *Bitset) ParMinus(c *Bitset, p int) {
	bw, cw := b.words, c.words
	if p <= 1 || len(cw) < ParMinWords {
		b.MinusWith(c)
		return
	}
	ParDo(p, p, func(k int) {
		lo, hi := chunkBounds(len(cw), p, k)
		for i := lo; i < hi; i++ {
			bw[i] &^= cw[i]
		}
	})
}

// ResultPar is Result with the flush parallelized: pass one popcounts
// each chunk of the touched word range to compute exact output
// offsets, pass two extracts every chunk into its disjoint region of
// one exactly-sized allocation (folding the Reset clear into the
// walk). The returned NodeSet is element-for-element identical to what
// Result would have produced; only the capacity may differ (exact
// rather than the duplicate-counting upper bound).
func (a *Accumulator) ResultPar(p int) NodeSet {
	words := a.hiW - a.loW
	if p <= 1 || words < ParMinWords {
		return a.Result()
	}
	w := a.b.words
	loW := a.loW
	counts := make([]int, p)
	ParDo(p, p, func(k int) {
		lo, hi := chunkBounds(words, p, k)
		n := 0
		for i := loW + lo; i < loW+hi; i++ {
			n += bits.OnesCount64(w[i])
		}
		counts[k] = n
	})
	total := 0
	for k, n := range counts {
		counts[k] = total
		total += n
	}
	if total == 0 {
		a.Reset()
		return nil
	}
	dst := make(NodeSet, total)
	ParDo(p, p, func(k int) {
		lo, hi := chunkBounds(words, p, k)
		out := counts[k]
		for i := loW + lo; i < loW+hi; i++ {
			word := w[i]
			base := NodeID(i * wordBits)
			for word != 0 {
				dst[out] = base + NodeID(bits.TrailingZeros64(word))
				out++
				word &= word - 1
			}
			w[i] = 0
		}
	})
	a.total, a.loW, a.hiW = 0, len(w), 0
	return dst
}
