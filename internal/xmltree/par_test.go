package xmltree

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// parLevels is the randomized parallelism corpus: 0 and 1 take the
// sequential fast path, 2 and 8 exercise the pool (8 oversubscribes
// the 1-CPU CI box, which is exactly what shakes out ordering
// assumptions under -race).
var parLevels = []int{0, 1, 2, 8}

// randBits fills a bitset with random words; sizes straddle
// ParMinWords so both the sequential fast path and the parallel chunk
// path run.
func randBits(r *rand.Rand, n int) *Bitset {
	b := NewBitset(n)
	for i := range b.words {
		b.words[i] = r.Uint64()
	}
	b.trim()
	return b
}

func TestParBitsetMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 63, 64, 1000, ParMinWords*wordBits - 1, ParMinWords * wordBits, ParMinWords*wordBits + 777}
	for _, n := range sizes {
		for trial := 0; trial < 3; trial++ {
			x := randBits(r, n)
			y := randBits(r, n)
			for _, p := range parLevels {
				for _, op := range []struct {
					name string
					seq  func(b, c *Bitset)
					par  func(b, c *Bitset)
				}{
					{"union", (*Bitset).UnionWith, func(b, c *Bitset) { b.ParUnion(c, p) }},
					{"intersect", (*Bitset).IntersectWith, func(b, c *Bitset) { b.ParIntersect(c, p) }},
					{"minus", (*Bitset).MinusWith, func(b, c *Bitset) { b.ParMinus(c, p) }},
				} {
					want, got := x.Clone(), x.Clone()
					op.seq(want, y)
					op.par(got, y)
					if !got.Equal(want) {
						t.Fatalf("n=%d p=%d %s: parallel differs from sequential", n, p, op.name)
					}
				}
			}
		}
	}
}

func TestAccumulatorResultParMatchesResult(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	sizes := []int{100, ParMinWords*wordBits + 5000}
	for _, n := range sizes {
		for _, p := range parLevels {
			seq := NewAccumulator(n)
			par := NewAccumulator(n)
			for round := 0; round < 5; round++ {
				for add := 0; add < 4; add++ {
					var s NodeSet
					for i := 0; i < n; i++ {
						if r.Intn(16) == 0 {
							s = append(s, NodeID(i))
						}
					}
					seq.Add(s)
					par.Add(s)
				}
				want := seq.Result()
				got := par.ResultPar(p)
				if !got.Equal(want) {
					t.Fatalf("n=%d p=%d round=%d: ResultPar = %d nodes, Result = %d nodes",
						n, p, round, len(got), len(want))
				}
			}
			// Both accumulators must come back clean for the next union.
			seq.Add(NodeSet{1})
			par.Add(NodeSet{1})
			if w, g := seq.Result(), par.ResultPar(p); !g.Equal(w) || len(g) != 1 {
				t.Fatalf("n=%d p=%d: accumulator state dirty after parallel flush: %v vs %v", n, p, g, w)
			}
		}
	}
}

// TestParDoRunsEveryChunkOnce pins the ParDo contract under pool
// saturation and nesting: every chunk index runs exactly once.
func TestParDoRunsEveryChunkOnce(t *testing.T) {
	for _, p := range parLevels {
		for _, chunks := range []int{0, 1, 3, 17, 256} {
			hits := make([]atomic.Int32, chunks)
			ParDo(p, chunks, func(k int) {
				hits[k].Add(1)
				// Nested ParDo must not deadlock even when the pool is
				// saturated by the outer job.
				ParDo(p, 2, func(int) {})
			})
			for k := range hits {
				if got := hits[k].Load(); got != 1 {
					t.Fatalf("p=%d chunks=%d: chunk %d ran %d times", p, chunks, k, got)
				}
			}
		}
	}
}

func TestContentCount(t *testing.T) {
	d, err := ParseString(`<a x="1"><b>t</b><c y="2"><d/></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := d.Index()
	for lo := 0; lo <= d.Len(); lo++ {
		for hi := lo; hi <= d.Len(); hi++ {
			want := 0
			for i := lo; i < hi; i++ {
				if !d.Node(NodeID(i)).IsAttrOrNS() {
					want++
				}
			}
			if got := ix.ContentCount(NodeID(lo), NodeID(hi)); got != want {
				t.Fatalf("ContentCount(%d,%d) = %d, want %d", lo, hi, got, want)
			}
		}
	}
	if got := ix.ContentCount(3, 1); got != 0 {
		t.Fatalf("ContentCount on empty interval = %d, want 0", got)
	}
}
