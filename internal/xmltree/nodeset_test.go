package xmltree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(5, 3, 5, 1)
	if len(s) != 3 || s[0] != 1 || s[1] != 3 || s[2] != 5 {
		t.Fatalf("NewNodeSet dedup/sort failed: %v", s)
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Error("Contains wrong")
	}
	if s.First() != 1 {
		t.Error("First wrong")
	}
	var empty NodeSet
	if !empty.IsEmpty() || empty.First() != NilNode {
		t.Error("empty set behaviour wrong")
	}
}

func TestNodeSetOps(t *testing.T) {
	a := NewNodeSet(1, 2, 3, 4)
	b := NewNodeSet(3, 4, 5)
	if got := a.Union(b); !got.Equal(NewNodeSet(1, 2, 3, 4, 5)) {
		t.Errorf("union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewNodeSet(3, 4)) {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewNodeSet(1, 2)) {
		t.Errorf("minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(NewNodeSet(5)) {
		t.Errorf("minus = %v", got)
	}
	var empty NodeSet
	if got := a.Union(empty); !got.Equal(a) {
		t.Errorf("union empty = %v", got)
	}
	if got := empty.Union(a); !got.Equal(a) {
		t.Errorf("empty union = %v", got)
	}
	if got := a.Intersect(empty); !got.IsEmpty() {
		t.Errorf("intersect empty = %v", got)
	}
}

// genSet produces a random small NodeSet for property tests.
func genSet(r *rand.Rand) NodeSet {
	n := r.Intn(12)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(r.Intn(20))
	}
	return NewNodeSet(ids...)
}

func TestNodeSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genSet(r))
			}
		},
	}
	// Union is commutative and idempotent; De Morgan-ish identities via
	// Minus; Intersect distributes over Union on these finite sets.
	if err := quick.Check(func(a, b, c NodeSet) bool {
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(a).Equal(a) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		// a − b ⊆ a and disjoint from b
		m := a.Minus(b)
		if !m.Intersect(b).IsEmpty() {
			return false
		}
		if !m.Union(a.Intersect(b)).Equal(a) {
			return false
		}
		// distributivity: a ∩ (b ∪ c) = (a∩b) ∪ (a∩c)
		l := a.Intersect(b.Union(c))
		rr := a.Intersect(b).Union(a.Intersect(c))
		return l.Equal(rr)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestBitsetRoundTrip(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		var ids []NodeID
		for _, v := range raw {
			ids = append(ids, NodeID(v)) // universe of 256 spans >1 word
		}
		s := NewNodeSet(ids...)
		b := NewBitset(256).FromNodeSet(s)
		return b.ToNodeSet().Equal(s)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
