package xmltree

import (
	"sort"
	"sync"
)

// Index is the lazily built structural index of a Document: precomputed
// subtree intervals and a label→NodeSet name index, plus a pool of
// reusable evaluator scratch. It exists so that the recursive axes
// (descendant, ancestor, following, preceding and friends) evaluate as
// O(output) interval arithmetic instead of worklist closures, and so
// that name tests filter against a precomputed posting list instead of
// scanning candidates.
//
// Laziness and caching contract: the index is built at most once per
// document, on first use, under a sync.Once; a Document never exposes a
// partially built index. Because documents are immutable after
// construction, the index never invalidates. Building is O(|dom|) time
// and space (one NodeID per node plus the name posting lists), so
// serving stacks that parse many short-lived documents only pay for it
// on documents that are actually queried.
type Index struct {
	d *Document

	// subtreeEnd[x] is the exclusive end of x's subtree interval: the
	// arena is in document order (preorder), so the nodes of the
	// subtree rooted at x are exactly [x, subtreeEnd[x]). Attribute and
	// namespace nodes lie inside their element's interval, matching the
	// paper's model of them as abstract children.
	subtreeEnd []NodeID

	// byName maps an element name to the document-ordered set of
	// elements carrying it (the label index; cf. the O(|D|·|Σ|)
	// precomputations of Theorem 10.8).
	byName map[string]NodeSet

	// contentBefore[i] counts the content (non-attribute,
	// non-namespace) nodes among [0, i): prefix sums that give the
	// exact size of any preorder subrange's axis contribution in O(1),
	// which is what lets parallel interval fills compute each worker's
	// output offset up front and write disjoint regions of one buffer.
	contentBefore []int32

	// scratch pools evaluator scratch sized to this document, making
	// steady-state axis evaluation allocation-free.
	scratch sync.Pool
}

// Index returns the document's structural index, building it on first
// use. Safe for concurrent use.
func (d *Document) Index() *Index {
	d.idxOnce.Do(func() {
		d.idx = buildIndex(d)
	})
	return d.idx
}

func buildIndex(d *Document) *Index {
	n := len(d.nodes)
	idx := &Index{d: d, subtreeEnd: make([]NodeID, n), byName: map[string]NodeSet{},
		contentBefore: make([]int32, n+1)}
	for i := 0; i < n; i++ {
		idx.subtreeEnd[i] = NodeID(i + 1)
		if d.nodes[i].Type == Element {
			idx.byName[d.nodes[i].Name] = append(idx.byName[d.nodes[i].Name], NodeID(i))
		}
		idx.contentBefore[i+1] = idx.contentBefore[i]
		if !d.nodes[i].IsAttrOrNS() {
			idx.contentBefore[i+1]++
		}
	}
	// One reverse pass: by the time node i is visited all its
	// descendants have been folded into subtreeEnd[i], which then folds
	// into its parent.
	for i := n - 1; i >= 1; i-- {
		p := d.nodes[i].Parent
		if idx.subtreeEnd[i] > idx.subtreeEnd[p] {
			idx.subtreeEnd[p] = idx.subtreeEnd[i]
		}
	}
	idx.scratch.New = func() any { return &Scratch{} }
	return idx
}

// SubtreeEnd returns the exclusive end of x's subtree interval
// [x, SubtreeEnd(x)) in document order.
func (ix *Index) SubtreeEnd(x NodeID) NodeID { return ix.subtreeEnd[x] }

// Named returns the document-ordered set of elements with the given
// name. The returned slice is shared and must not be mutated.
func (ix *Index) Named(name string) NodeSet { return ix.byName[name] }

// ContentCount returns the number of content (non-attribute,
// non-namespace) nodes in the preorder interval [lo, hi), in O(1) via
// the prefix counts.
func (ix *Index) ContentCount(lo, hi NodeID) int {
	if lo >= hi {
		return 0
	}
	return int(ix.contentBefore[hi] - ix.contentBefore[lo])
}

// NamedRange returns the subrange of Named(name) falling inside the
// half-open document-order interval [lo, hi), by binary search.
func (ix *Index) NamedRange(name string, lo, hi NodeID) NodeSet {
	s := ix.byName[name]
	i := sort.Search(len(s), func(k int) bool { return s[k] >= lo })
	j := sort.Search(len(s), func(k int) bool { return s[k] >= hi })
	return s[i:j]
}

// Scratch is reusable per-document evaluator scratch: two bitsets plus
// a work slice, all sized to the document. Acquire hands it out with
// the bitsets sized (and cleared) for the document and the slice empty;
// users must leave the bitsets fully cleared before Release — clearing
// only the bits they set, which keeps the round trip O(work done), not
// O(|dom|).
type Scratch struct {
	Visited Bitset
	Mark    Bitset
	Work    []NodeID
}

// AcquireScratch returns scratch sized to the document, reusing pooled
// backing arrays so steady-state acquisition does not allocate.
func (ix *Index) AcquireScratch() *Scratch {
	sc := ix.scratch.Get().(*Scratch)
	n := ix.d.Len()
	if sc.Visited.n != n {
		sc.Visited.Reset(n)
		sc.Mark.Reset(n)
	}
	sc.Work = sc.Work[:0]
	return sc
}

// ReleaseScratch returns scratch to the pool. The bitsets must already
// be clear (the evaluator clears exactly the bits it set).
func (ix *Index) ReleaseScratch(sc *Scratch) { ix.scratch.Put(sc) }
