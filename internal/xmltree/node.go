// Package xmltree implements the XPath data model of Gottlob, Koch and
// Pichler, "Efficient Algorithms for Processing XPath Queries" (VLDB 2002),
// Sections 3 and 4.
//
// An XML document is an unranked, ordered, labeled tree held in a dense node
// arena. The tree structure is represented exactly by the paper's two
// "primitive" relations
//
//	firstchild, nextsibling : dom → dom
//
// and their inverses (firstchild⁻¹ is recovered from Parent+PrevSibling).
// Every node is one of seven types: root, element, text, comment, attribute,
// namespace, and processing instruction. Following Section 4, attribute and
// namespace nodes are modeled as abstract children of their element: the
// attribute axis is child₀(S) ∩ T(attribute()), and all ordinary axes filter
// attribute and namespace nodes out of their results.
package xmltree

import "fmt"

// NodeID identifies a node within its Document. IDs are dense indices into
// the document's node arena and are assigned in document order, so comparing
// two NodeIDs compares document positions. NilNode represents "null" in the
// paper's primitive tree functions.
type NodeID int32

// NilNode is the absent node ("null" in the paper's tree functions).
const NilNode NodeID = -1

// NodeType enumerates the seven node types of the XPath 1.0 data model
// (Section 4).
type NodeType uint8

// The seven XPath node types.
const (
	Root NodeType = iota
	Element
	Text
	Comment
	Attribute
	Namespace
	ProcInst
)

// String returns the conventional XPath name of the node type.
func (t NodeType) String() string {
	switch t {
	case Root:
		return "root"
	case Element:
		return "element"
	case Text:
		return "text"
	case Comment:
		return "comment"
	case Attribute:
		return "attribute"
	case Namespace:
		return "namespace"
	case ProcInst:
		return "processing-instruction"
	default:
		return fmt.Sprintf("NodeType(%d)", uint8(t))
	}
}

// HasName reports whether nodes of this type carry a name. Per Section 4,
// all types besides text and comment (and the root) have a name.
func (t NodeType) HasName() bool {
	switch t {
	case Element, Attribute, Namespace, ProcInst:
		return true
	default:
		return false
	}
}

// Node is one tree node. The four link fields realize the primitive
// relations firstchild and nextsibling and their inverses. A zero link is
// meaningless; absent links are NilNode.
type Node struct {
	// Type is the node's XPath node type.
	Type NodeType
	// Name is the node name: tag for elements, attribute name for
	// attributes, prefix for namespace nodes, target for processing
	// instructions. Empty for root, text and comment nodes.
	Name string
	// Data holds character content: text for text/comment nodes, the
	// value for attribute nodes, the URI for namespace nodes, and the
	// instruction body for processing instructions.
	Data string

	// Parent, FirstChild, NextSibling and PrevSibling encode the tree.
	// In the abstract model attribute and namespace nodes are children:
	// they appear on the sibling chain of their element's children,
	// namespace nodes first, then attributes, then regular content.
	Parent, FirstChild, NextSibling, PrevSibling NodeID
}

// IsAttrOrNS reports whether the node is of type attribute or namespace,
// the two types that ordinary axes must filter out (Section 4).
func (n *Node) IsAttrOrNS() bool {
	return n.Type == Attribute || n.Type == Namespace
}
