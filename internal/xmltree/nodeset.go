package xmltree

import "sort"

// NodeSet is a set of nodes maintained sorted in document order with no
// duplicates — the representation of the XPath nset type. The zero value
// is the empty set.
type NodeSet []NodeID

// NewNodeSet builds a NodeSet from arbitrary IDs, sorting and
// deduplicating.
func NewNodeSet(ids ...NodeID) NodeSet {
	s := append(NodeSet(nil), ids...)
	s.normalize()
	return s
}

func (s *NodeSet) normalize() {
	ns := *s
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	out := ns[:0]
	for i, id := range ns {
		if i == 0 || id != ns[i-1] {
			out = append(out, id)
		}
	}
	*s = out
}

// Contains reports membership using binary search.
func (s NodeSet) Contains(id NodeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// IsEmpty reports whether the set is empty.
func (s NodeSet) IsEmpty() bool { return len(s) == 0 }

// First returns the first node in document order (first<doc), or NilNode
// if the set is empty.
func (s NodeSet) First() NodeID {
	if len(s) == 0 {
		return NilNode
	}
	return s[0]
}

// Union returns s ∪ t by sorted merge.
func (s NodeSet) Union(t NodeSet) NodeSet {
	if len(s) == 0 {
		return append(NodeSet(nil), t...)
	}
	if len(t) == 0 {
		return append(NodeSet(nil), s...)
	}
	out := make(NodeSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t by sorted merge.
func (s NodeSet) Intersect(t NodeSet) NodeSet {
	var out NodeSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s − t by sorted merge.
func (s NodeSet) Minus(t NodeSet) NodeSet {
	var out NodeSet
	j := 0
	for _, id := range s {
		for j < len(t) && t[j] < id {
			j++
		}
		if j < len(t) && t[j] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Equal reports set equality.
func (s NodeSet) Equal(t NodeSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s NodeSet) Clone() NodeSet { return append(NodeSet(nil), s...) }

// Bitmap is a dense boolean set over dom used by the linear-time Core
// XPath algebra (Section 10.1), where each set operation must run in
// O(|dom|).
type Bitmap []bool

// NewBitmap returns an empty bitmap for a document of n nodes.
func NewBitmap(n int) Bitmap { return make(Bitmap, n) }

// FromNodeSet fills the bitmap with the members of s.
func (b Bitmap) FromNodeSet(s NodeSet) Bitmap {
	for i := range b {
		b[i] = false
	}
	for _, id := range s {
		b[id] = true
	}
	return b
}

// ToNodeSet converts the bitmap to a sorted NodeSet.
func (b Bitmap) ToNodeSet() NodeSet {
	var out NodeSet
	for i, ok := range b {
		if ok {
			out = append(out, NodeID(i))
		}
	}
	return out
}
