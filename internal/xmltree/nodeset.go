package xmltree

import (
	"slices"
	"sort"
)

// NodeSet is a set of nodes maintained sorted in document order with no
// duplicates — the representation of the XPath nset type. The zero value
// is the empty set.
type NodeSet []NodeID

// NewNodeSet builds a NodeSet from arbitrary IDs, sorting and
// deduplicating.
func NewNodeSet(ids ...NodeID) NodeSet {
	s := append(NodeSet(nil), ids...)
	s.normalize()
	return s
}

func (s *NodeSet) normalize() {
	ns := *s
	slices.Sort(ns)
	out := ns[:0]
	for i, id := range ns {
		if i == 0 || id != ns[i-1] {
			out = append(out, id)
		}
	}
	*s = out
}

// Normalized sorts s in place and removes duplicates, returning the
// (possibly shortened) slice. It is the allocation-free counterpart of
// NewNodeSet for unions built by appending into one buffer.
func (s NodeSet) Normalized() NodeSet {
	s.normalize()
	return s
}

// Reversed reverses s in place and returns it: the conversion between
// document order and reverse-axis order.
func (s NodeSet) Reversed() NodeSet {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
	return s
}

// Contains reports membership using binary search.
func (s NodeSet) Contains(id NodeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// IsEmpty reports whether the set is empty.
func (s NodeSet) IsEmpty() bool { return len(s) == 0 }

// First returns the first node in document order (first<doc), or NilNode
// if the set is empty.
func (s NodeSet) First() NodeID {
	if len(s) == 0 {
		return NilNode
	}
	return s[0]
}

// Union returns s ∪ t by sorted merge.
func (s NodeSet) Union(t NodeSet) NodeSet {
	if len(s) == 0 {
		return append(NodeSet(nil), t...)
	}
	if len(t) == 0 {
		return append(NodeSet(nil), s...)
	}
	out := make(NodeSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t by sorted merge.
func (s NodeSet) Intersect(t NodeSet) NodeSet {
	var out NodeSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s − t by sorted merge.
func (s NodeSet) Minus(t NodeSet) NodeSet {
	var out NodeSet
	j := 0
	for _, id := range s {
		for j < len(t) && t[j] < id {
			j++
		}
		if j < len(t) && t[j] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Equal reports set equality.
func (s NodeSet) Equal(t NodeSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the set.
func (s NodeSet) Clone() NodeSet { return append(NodeSet(nil), s...) }

// The dense boolean set over dom used by the linear-time Core XPath
// algebra (Section 10.1) is Bitset (bitset.go): a packed []uint64 whose
// set operations run word-parallel, 64 members per machine word.
