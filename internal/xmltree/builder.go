package xmltree

import (
	"fmt"
	"strings"
)

// Builder assembles a Document node by node in document order. It is used
// both by the XML parser and by synthetic workload generators, which can
// build multi-megabyte trees without serializing and re-parsing XML.
//
// A Builder starts with the root node already open. Elements are opened
// with StartElement and closed with EndElement; attributes must be added
// immediately after StartElement, before any content.
type Builder struct {
	doc   *Document
	stack []NodeID // open element chain; stack[0] is the root
	last  []NodeID // last child emitted under each open node, NilNode if none

	// IDAttributes is the set of attribute names treated as ID-typed
	// for deref_ids. It defaults to {"id"}; XML without a DTD has no
	// other way to declare IDs, and the paper's documents (Fig. 8) use
	// exactly the attribute "id".
	IDAttributes map[string]bool
}

// NewBuilder returns a Builder with the root node open.
func NewBuilder() *Builder {
	d := &Document{
		nodes: make([]Node, 0, 64),
		ids:   map[string]NodeID{},
	}
	d.nodes = append(d.nodes, Node{
		Type:   Root,
		Parent: NilNode, FirstChild: NilNode, NextSibling: NilNode, PrevSibling: NilNode,
	})
	return &Builder{
		doc:          d,
		stack:        []NodeID{0},
		last:         []NodeID{NilNode},
		IDAttributes: map[string]bool{"id": true},
	}
}

func (b *Builder) appendNode(n Node) NodeID {
	id := NodeID(len(b.doc.nodes))
	parent := b.stack[len(b.stack)-1]
	n.Parent = parent
	n.FirstChild = NilNode
	n.NextSibling = NilNode
	n.PrevSibling = b.last[len(b.last)-1]
	b.doc.nodes = append(b.doc.nodes, n)
	if n.PrevSibling == NilNode {
		b.doc.nodes[parent].FirstChild = id
	} else {
		b.doc.nodes[n.PrevSibling].NextSibling = id
	}
	b.last[len(b.last)-1] = id
	return id
}

// StartElement opens a new element with the given name.
func (b *Builder) StartElement(name string) NodeID {
	id := b.appendNode(Node{Type: Element, Name: name})
	b.stack = append(b.stack, id)
	b.last = append(b.last, NilNode)
	return id
}

// EndElement closes the most recently opened element.
func (b *Builder) EndElement() {
	if len(b.stack) == 1 {
		panic("xmltree: EndElement with no open element")
	}
	b.stack = b.stack[:len(b.stack)-1]
	b.last = b.last[:len(b.last)-1]
}

// Attribute adds an attribute node to the currently open element. It must
// be called before any content is added to the element.
func (b *Builder) Attribute(name, value string) NodeID {
	id := b.appendNode(Node{Type: Attribute, Name: name, Data: value})
	if b.IDAttributes[name] {
		if _, dup := b.doc.ids[value]; !dup {
			b.doc.ids[value] = b.doc.nodes[id].Parent
		}
	}
	return id
}

// NamespaceNode adds a namespace node (prefix → uri) to the currently
// open element.
func (b *Builder) NamespaceNode(prefix, uri string) NodeID {
	return b.appendNode(Node{Type: Namespace, Name: prefix, Data: uri})
}

// Text adds a text node.
func (b *Builder) Text(data string) NodeID {
	return b.appendNode(Node{Type: Text, Data: data})
}

// Comment adds a comment node.
func (b *Builder) Comment(data string) NodeID {
	return b.appendNode(Node{Type: Comment, Data: data})
}

// ProcInst adds a processing-instruction node with the given target and
// body.
func (b *Builder) ProcInst(target, data string) NodeID {
	return b.appendNode(Node{Type: ProcInst, Name: target, Data: data})
}

// Done finalizes and returns the Document. The Builder must not be used
// afterwards. It is an error to call Done with unclosed elements.
func (b *Builder) Done() (*Document, error) {
	if len(b.stack) != 1 {
		return nil, fmt.Errorf("xmltree: %d unclosed element(s)", len(b.stack)-1)
	}
	d := b.doc
	//lint:ignore lockshard the document is not yet published: Done runs before any other goroutine can hold a reference, so these pre-publication writes need no lock
	d.strvalCache = make([]string, len(d.nodes))
	//lint:ignore lockshard same pre-publication write as the line above
	d.strvalDone = make([]bool, len(d.nodes))
	d.buildRef()
	b.doc = nil
	return d, nil
}

// MustDone is Done for synthetic documents known to be well-formed.
func (b *Builder) MustDone() *Document {
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

// buildRef precomputes the ref relation of Theorem 10.7: ⟨x,y⟩ ∈ ref iff
// the text directly inside x contains a whitespace-separated token equal
// to the ID of y. The relation is linear in the size of the document text.
func (d *Document) buildRef() {
	d.ref = map[NodeID][]NodeID{}
	d.refInv = map[NodeID][]NodeID{}
	if len(d.ids) == 0 {
		return
	}
	for i := range d.nodes {
		if d.nodes[i].Type != Element && d.nodes[i].Type != Root {
			continue
		}
		x := NodeID(i)
		txt := d.DirectText(x)
		if txt == "" {
			continue
		}
		var targets []NodeID
		seen := map[NodeID]bool{}
		for _, tok := range strings.Fields(txt) {
			if y, ok := d.ids[tok]; ok && !seen[y] {
				seen[y] = true
				targets = append(targets, y)
			}
		}
		if len(targets) > 0 {
			d.ref[x] = targets
			for _, y := range targets {
				d.refInv[y] = append(d.refInv[y], x)
			}
		}
	}
}
