package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions configures XML parsing.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes consisting entirely of
	// whitespace. The default (false) drops them, matching how the
	// paper's experiments treat their synthetic documents and how XSLT
	// processors behave under xsl:strip-space.
	KeepWhitespaceText bool
	// KeepComments retains comment nodes (default true behaviour is to
	// keep them; set DropComments to discard).
	DropComments bool
	// IDAttributes overrides the set of attribute names treated as
	// ID-typed for deref_ids. Nil means {"id"}.
	IDAttributes []string
}

// Parse reads an XML document into the paper's data model using the
// default options.
func Parse(r io.Reader) (*Document, error) {
	return ParseWithOptions(r, ParseOptions{})
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParseString parses a string known to be well-formed XML; it panics
// on error. Intended for tests and examples.
func MustParseString(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseWithOptions reads an XML document with explicit options.
func ParseWithOptions(r io.Reader, opts ParseOptions) (*Document, error) {
	b := NewBuilder()
	if opts.IDAttributes != nil {
		b.IDAttributes = map[string]bool{}
		for _, a := range opts.IDAttributes {
			b.IDAttributes[a] = true
		}
	}
	dec := xml.NewDecoder(r)
	// The paper's model treats names as opaque strings; we do our own
	// prefix bookkeeping, so disable the decoder's URI rewriting by
	// reading raw tokens (encoding/xml still expands entities).
	// RawToken does not verify that end tags match start tags, so keep
	// our own stack of open element names.
	var open []string
	sawElement := false
	for {
		tok, err := dec.RawToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.StartElement(rawName(t.Name))
			for _, a := range t.Attr {
				n := rawName(a.Name)
				if n == "xmlns" {
					b.NamespaceNode("", a.Value)
				} else if strings.HasPrefix(n, "xmlns:") {
					b.NamespaceNode(strings.TrimPrefix(n, "xmlns:"), a.Value)
				} else {
					b.Attribute(n, a.Value)
				}
			}
			open = append(open, rawName(t.Name))
			sawElement = true
		case xml.EndElement:
			name := rawName(t.Name)
			if len(open) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unexpected </%s>", name)
			}
			if open[len(open)-1] != name {
				return nil, fmt.Errorf("xmltree: parse: </%s> closes <%s>", name, open[len(open)-1])
			}
			open = open[:len(open)-1]
			b.EndElement()
		case xml.CharData:
			s := string(t)
			if len(open) == 0 {
				// Whitespace between the prolog and the document
				// element is not part of the tree.
				if strings.TrimSpace(s) == "" {
					continue
				}
				return nil, fmt.Errorf("xmltree: parse: text outside document element")
			}
			if !opts.KeepWhitespaceText && strings.TrimSpace(s) == "" {
				continue
			}
			b.Text(s)
		case xml.Comment:
			if !opts.DropComments {
				b.Comment(string(t))
			}
		case xml.ProcInst:
			if t.Target == "xml" {
				continue // the XML declaration is not a node
			}
			b.ProcInst(t.Target, string(t.Inst))
		case xml.Directive:
			// DOCTYPE etc.; the data model does not represent these.
		}
	}
	if len(open) != 0 {
		return nil, fmt.Errorf("xmltree: parse: %d unclosed element(s)", len(open))
	}
	if !sawElement {
		return nil, fmt.Errorf("xmltree: parse: no document element")
	}
	return b.Done()
}

func rawName(n xml.Name) string {
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}
