package xmltree

import (
	"io"
	"strings"
)

// WriteXML serializes the document back to XML. The output is a
// well-formed document reproducing the tree's structure; it is intended
// for debugging and for materializing synthetic workloads on disk.
func (d *Document) WriteXML(w io.Writer) error {
	sw := &stickyWriter{w: w}
	for c := d.nodes[0].FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
		d.writeNode(sw, c)
	}
	return sw.err
}

// XMLString serializes the document to a string.
func (d *Document) XMLString() string {
	var b strings.Builder
	_ = d.WriteXML(&b)
	return b.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) str(v string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, v)
	}
}

func (d *Document) writeNode(w *stickyWriter, id NodeID) {
	n := &d.nodes[id]
	switch n.Type {
	case Element:
		w.str("<")
		w.str(n.Name)
		hasContent := false
		for c := n.FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
			switch d.nodes[c].Type {
			case Attribute:
				w.str(" ")
				w.str(d.nodes[c].Name)
				w.str(`="`)
				w.str(escapeAttr(d.nodes[c].Data))
				w.str(`"`)
			case Namespace:
				w.str(" xmlns")
				if d.nodes[c].Name != "" {
					w.str(":")
					w.str(d.nodes[c].Name)
				}
				w.str(`="`)
				w.str(escapeAttr(d.nodes[c].Data))
				w.str(`"`)
			default:
				hasContent = true
			}
		}
		if !hasContent {
			w.str("/>")
			return
		}
		w.str(">")
		for c := n.FirstChild; c != NilNode; c = d.nodes[c].NextSibling {
			if !d.nodes[c].IsAttrOrNS() {
				d.writeNode(w, c)
			}
		}
		w.str("</")
		w.str(n.Name)
		w.str(">")
	case Text:
		w.str(escapeText(n.Data))
	case Comment:
		w.str("<!--")
		w.str(n.Data)
		w.str("-->")
	case ProcInst:
		w.str("<?")
		w.str(n.Name)
		if n.Data != "" {
			w.str(" ")
			w.str(n.Data)
		}
		w.str("?>")
	}
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
	return r.Replace(s)
}
