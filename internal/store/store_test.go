package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	s := NewSharded[string](Config{Shards: 4})
	if _, err := s.Put("a", "alpha", 5); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("a")
	if !ok || v != "alpha" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if _, err := s.Put("a", "beta", 4); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("a"); v != "beta" {
		t.Fatalf("after replace Get(a) = %q", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (replace must not duplicate)", s.Len())
	}
	if st := s.Stats(); st.Bytes != 4 {
		t.Fatalf("Bytes = %d, want 4 after replacement", st.Bytes)
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Fatal("Delete should report presence exactly once")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("empty store stats = %+v", st)
	}
}

// TestShardDistribution is the acceptance check for the routing layer:
// a realistic population of document names must land on every shard,
// and routing must be stable per key.
func TestShardDistribution(t *testing.T) {
	const shards = 8
	s := NewSharded[int](Config{Shards: shards})
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if s.ShardFor(key) != s.ShardFor(key) {
			t.Fatalf("routing for %q is not stable", key)
		}
		if _, err := s.Put(key, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if len(st.Shards) != shards {
		t.Fatalf("got %d shard stats, want %d", len(st.Shards), shards)
	}
	total := 0
	for i, ss := range st.Shards {
		if ss.Entries == 0 {
			t.Fatalf("shard %d is empty: distribution %+v", i, st.Shards)
		}
		total += ss.Entries
	}
	if total != 200 || st.Entries != 200 {
		t.Fatalf("entries = %d (aggregate %d), want 200", total, st.Entries)
	}
}

func TestMaxEntriesRejectsNewKeepsReplacements(t *testing.T) {
	s := NewSharded[int](Config{Shards: 2, MaxEntries: 2})
	if _, err := s.Put("one", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("two", 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("three", 3, 1); !errors.Is(err, ErrFull) {
		t.Fatalf("over-cap Put err = %v, want ErrFull", err)
	}
	if _, err := s.Put("two", 22, 1); err != nil {
		t.Fatalf("replacement at cap err = %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Delete("one")
	if _, err := s.Put("three", 3, 1); err != nil {
		t.Fatal("slot freed by Delete was not reusable")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so all keys compete for the same 100-byte budget.
	s := NewSharded[int](Config{Shards: 1, MaxBytes: 100, Policy: EvictLRU})
	for i := 0; i < 4; i++ {
		if _, err := s.Put(fmt.Sprintf("k%d", i), i, 25); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 is the LRU, then overflow the budget.
	s.Get("k0")
	if _, err := s.Put("big", 99, 30); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("k1 should have been evicted as least recently used")
	}
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("recently used k0 was evicted")
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", st)
	}
	if st.Bytes > 100 {
		t.Fatalf("bytes = %d exceeds budget after eviction", st.Bytes)
	}
}

func TestRejectPolicyAndTooLarge(t *testing.T) {
	s := NewSharded[int](Config{Shards: 1, MaxBytes: 100, Policy: EvictReject})
	if _, err := s.Put("a", 1, 80); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", 2, 30); !errors.Is(err, ErrFull) {
		t.Fatalf("over-budget Put err = %v, want ErrFull", err)
	}
	if _, err := s.Put("huge", 3, 200); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Put err = %v, want ErrTooLarge", err)
	}
	// Replacing the resident entry with a smaller one must succeed.
	if _, err := s.Put("a", 11, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("b", 2, 30); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	s := NewSharded[int](Config{Shards: 4})
	want := map[string]int{"a": 1, "b": 2, "c": 3}
	for k, v := range want {
		s.Put(k, v, int64(v))
	}
	got := map[string]int{}
	var bytes int64
	s.Range(func(k string, v int, size int64) bool {
		got[k] = v
		bytes += size
		return true
	})
	if len(got) != len(want) || bytes != 6 {
		t.Fatalf("Range visited %v (%d bytes)", got, bytes)
	}
	n := 0
	s.Range(func(string, int, int64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range ignored early stop: visited %d", n)
	}
}

// TestDeleteIf pins the conditional delete the idle janitor relies on:
// the condition sees the currently stored value under the shard lock,
// so a stale snapshot cannot delete a replacement entry.
func TestDeleteIf(t *testing.T) {
	s := NewSharded[int](Config{Shards: 2})
	if _, err := s.Put("k", 1, 10); err != nil {
		t.Fatal(err)
	}
	if s.DeleteIf("k", func(v int, size int64) bool { return v == 2 }) {
		t.Fatal("DeleteIf removed an entry its condition rejected")
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("entry vanished after a refused DeleteIf")
	}
	if !s.DeleteIf("k", func(v int, size int64) bool { return v == 1 && size == 10 }) {
		t.Fatal("DeleteIf refused a matching entry")
	}
	if s.DeleteIf("k", nil) {
		t.Fatal("DeleteIf on a missing key reported a removal")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", s.Len())
	}
}

// TestVersions pins the monotonic-version contract the replication
// layer leans on: Put assigns strictly increasing versions per key
// (even across Delete + re-Put), PutAt mirrors an explicit version and
// skips stale writes, and the counter never goes backwards past a
// mirrored version.
func TestVersions(t *testing.T) {
	s := NewSharded[string](Config{Shards: 2})
	v1, err := s.Put("doc", "one", 3)
	if err != nil || v1 == 0 {
		t.Fatalf("Put = (%d, %v), want a nonzero version", v1, err)
	}
	v2, _ := s.Put("doc", "two", 3)
	if v2 <= v1 {
		t.Fatalf("replacement version %d not above %d", v2, v1)
	}
	if got, ok := s.Version("doc"); !ok || got != v2 {
		t.Fatalf("Version(doc) = (%d, %v), want (%d, true)", got, ok, v2)
	}
	s.Delete("doc")
	if _, ok := s.Version("doc"); ok {
		t.Fatal("Version survived Delete")
	}
	v3, _ := s.Put("doc", "three", 5)
	if v3 <= v2 {
		t.Fatalf("re-Put after Delete got version %d, want above %d", v3, v2)
	}

	// Mirror a remote version well above the local counter.
	mv, err := s.PutAt("mirrored", "replica copy", 12, v3+100)
	if err != nil || mv != v3+100 {
		t.Fatalf("PutAt = (%d, %v), want %d", mv, err, v3+100)
	}
	// A stale mirror write is skipped: the resident entry wins.
	if got, _ := s.PutAt("mirrored", "stale copy", 10, v3+50); got != v3+100 {
		t.Fatalf("stale PutAt resulted in version %d, want resident %d", got, v3+100)
	}
	if val, _ := s.Get("mirrored"); val != "replica copy" {
		t.Fatalf("stale PutAt replaced the value: %q", val)
	}
	// The counter cleared the mirrored version: later Puts stay above.
	if v4, _ := s.Put("doc", "four", 5); v4 <= v3+100 {
		t.Fatalf("post-mirror Put version %d, want above %d", v4, v3+100)
	}
	if s.LastVersion() <= v3+100 {
		t.Fatalf("LastVersion = %d, want above %d", s.LastVersion(), v3+100)
	}
	// PutAt with a zero version falls back to self-assignment.
	if v, err := s.PutAt("self", "x", 1, 0); err != nil || v <= v3+100 {
		t.Fatalf("PutAt(0) = (%d, %v), want a fresh counter version", v, err)
	}
}

// TestKeyShardMatchesShardFor pins down that the exported partitioning
// function and the store's own routing agree — the cluster router
// depends on computing the same placement without holding a store.
func TestKeyShardMatchesShardFor(t *testing.T) {
	s := NewSharded[int](Config{Shards: 5})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if got, want := KeyShard(key, 5), s.ShardFor(key); got != want {
			t.Fatalf("KeyShard(%q, 5) = %d, ShardFor = %d", key, got, want)
		}
	}
	for _, n := range []int{1, 2, 3, 8} {
		if k := KeyShard("anything", n); k < 0 || k >= n {
			t.Fatalf("KeyShard(_, %d) = %d out of range", n, k)
		}
	}
}

// TestRangeOrderWithinShard pins down the snapshot order Range promises
// per shard: most recently used first (the LRU list front), with Get
// refreshing recency.
func TestRangeOrderWithinShard(t *testing.T) {
	s := NewSharded[int](Config{Shards: 1})
	for i, k := range []string{"a", "b", "c"} {
		if _, err := s.Put(k, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Get("a") // now a is MRU; order front→back is a, c, b
	var order []string
	s.Range(func(k string, _ int, _ int64) bool {
		order = append(order, k)
		return true
	})
	if fmt.Sprint(order) != "[a c b]" {
		t.Fatalf("Range order = %v, want [a c b] (MRU first)", order)
	}
}

// TestRangeUnderConcurrentMutation races Range passes against Put and
// Delete churn (run under -race). Each pass must be internally
// consistent: no key visited twice, every stable (never-mutated) key
// present exactly once with its original value and size, and no
// torn entries (value/size must match what some Put stored).
func TestRangeUnderConcurrentMutation(t *testing.T) {
	s := NewSharded[int](Config{Shards: 4})
	stable := map[string]int{}
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("stable-%d", i)
		stable[k] = i
		if _, err := s.Put(k, i, int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("hot-%d", (g*5+i)%24)
				if i%3 == 0 {
					s.Delete(k)
				} else {
					// Value and size move together; a torn read
					// would surface as a mismatched pair below.
					s.Put(k, i, int64(i))
				}
			}
		}(g)
	}
	for pass := 0; pass < 300; pass++ {
		seen := map[string]bool{}
		s.Range(func(k string, v int, size int64) bool {
			if seen[k] {
				t.Errorf("pass %d: key %q visited twice in one Range", pass, k)
			}
			seen[k] = true
			if want, ok := stable[k]; ok {
				if v != want || size != int64(want+1) {
					t.Errorf("stable key %q = (%d, %d), want (%d, %d)", k, v, size, want, want+1)
				}
			} else if size != int64(v) {
				t.Errorf("torn entry %q: value %d but size %d", k, v, size)
			}
			return true
		})
		for k := range stable {
			if !seen[k] {
				t.Errorf("pass %d: stable key %q missing from Range", pass, k)
			}
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestConcurrentAccess hammers one store from many goroutines under
// -race: puts, gets, deletes and stats on overlapping keys.
func TestConcurrentAccess(t *testing.T) {
	s := NewSharded[int](Config{Shards: 4, MaxBytes: 4096, MaxEntries: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				switch i % 4 {
				case 0:
					s.Put(key, i, 16)
				case 1:
					s.Get(key)
				case 2:
					s.Delete(key)
				default:
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries != s.Len() {
		t.Fatalf("entry accounting drifted: stats %d vs counter %d", st.Entries, s.Len())
	}
	if st.Entries > 64 || st.Bytes > 4096 {
		t.Fatalf("budgets exceeded: %+v", st)
	}
}
