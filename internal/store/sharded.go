package store

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 8

// Config sizes a Sharded store. The zero value means DefaultShards
// shards with no byte or entry budget.
type Config struct {
	// Shards is the number of independently locked shards (default
	// DefaultShards). Keys are routed by FNV-1a hash, so a fixed key
	// always lands on the same shard for a given shard count.
	Shards int
	// MaxBytes bounds the summed entry sizes across the store
	// (0 = unlimited). The budget is divided evenly among shards; each
	// shard enforces its slice independently, so per-shard accounting
	// never needs a global lock.
	MaxBytes int64
	// MaxEntries bounds the number of distinct keys across the whole
	// store (0 = unlimited). Replacements are always admitted.
	MaxEntries int
	// Policy selects eviction behavior when a shard's byte budget is
	// exhausted (default EvictLRU).
	Policy EvictionPolicy
}

// Sharded is the production Store: N shards, each a mutex-guarded map
// plus an LRU list, with byte accounting per shard. Routing is FNV-1a
// over the key, so contention on one hot document never blocks lookups
// of documents on other shards.
type Sharded[V any] struct {
	cfg      Config
	shardMax int64 // per-shard byte budget (0 = unlimited)
	entries  atomic.Int64
	lastVer  atomic.Uint64 // store-wide monotonic version counter
	shards   []shard[V]
}

type shard[V any] struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used
	bytes int64

	hits, misses, evictions uint64
}

type shardEntry[V any] struct {
	key  string
	val  V
	size int64
	ver  uint64
}

// NewSharded creates a sharded store from cfg (zero fields take
// defaults).
func NewSharded[V any](cfg Config) *Sharded[V] {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	s := &Sharded[V]{cfg: cfg, shards: make([]shard[V], cfg.Shards)}
	if cfg.MaxBytes > 0 {
		s.shardMax = cfg.MaxBytes / int64(cfg.Shards)
		if s.shardMax < 1 {
			s.shardMax = 1
		}
	}
	for i := range s.shards {
		s.shards[i].items = make(map[string]*list.Element)
		s.shards[i].lru = list.New()
	}
	return s
}

// KeyShard returns the bucket in [0, n) that key routes to under the
// store's FNV-1a partitioning. It is the one routing function shared by
// every placement layer: Sharded uses it to pick an in-process shard,
// and the cluster router (internal/cluster) uses it to pick the peer
// node that owns a document, so a document's shard within one process
// and its owning node across processes are computed identically.
func KeyShard(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// ShardFor returns the shard index key routes to; tests use it to
// assert the distribution, and the cluster router reuses the same
// KeyShard function to partition documents across peer nodes.
func (s *Sharded[V]) ShardFor(key string) int {
	return KeyShard(key, len(s.shards))
}

// Get returns the value stored under key, refreshing its recency.
func (s *Sharded[V]) Get(key string) (V, bool) {
	sh := &s.shards[s.ShardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		sh.misses++
		var zero V
		return zero, false
	}
	sh.hits++
	sh.lru.MoveToFront(el)
	return el.Value.(*shardEntry[V]).val, true
}

// Put stores v under key and returns the entry's newly assigned
// version (the next value of the store-wide monotonic counter). Under
// EvictLRU it evicts least-recently-used entries from the target shard
// until the new entry fits its byte budget; under EvictReject it
// returns ErrFull instead.
func (s *Sharded[V]) Put(key string, v V, size int64) (uint64, error) {
	return s.put(key, v, size, 0)
}

// PutAt stores v under key at an explicitly assigned version instead
// of drawing one from the store's counter — the write half of version
// mirroring: a replica stores the owner's document at the owner's
// version, and a reshard writes a migrated document at the version it
// had on the old ring. A PutAt at or below the resident entry's
// version is a stale write and is skipped (the resident entry wins);
// either way the resulting version under key is returned. The store's
// counter is raised to at least ver so later local Puts stay monotonic
// past every mirrored version.
func (s *Sharded[V]) PutAt(key string, v V, size int64, ver uint64) (uint64, error) {
	if ver == 0 {
		return s.put(key, v, size, 0)
	}
	for {
		c := s.lastVer.Load()
		if c >= ver || s.lastVer.CompareAndSwap(c, ver) {
			break
		}
	}
	return s.put(key, v, size, ver)
}

func (s *Sharded[V]) put(key string, v V, size int64, explicit uint64) (uint64, error) {
	if size < 0 {
		size = 0
	}
	if s.shardMax > 0 && size > s.shardMax {
		return 0, ErrTooLarge
	}
	sh := &s.shards[s.ShardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()

	el, replacing := sh.items[key]
	if replacing && explicit > 0 && el.Value.(*shardEntry[V]).ver >= explicit {
		return el.Value.(*shardEntry[V]).ver, nil // stale mirror write
	}
	if !replacing && s.cfg.MaxEntries > 0 {
		// Reserve a slot in the global entry count; CAS so concurrent
		// Puts on different shards cannot both squeeze past the cap.
		for {
			n := s.entries.Load()
			if n >= int64(s.cfg.MaxEntries) {
				return 0, ErrFull
			}
			if s.entries.CompareAndSwap(n, n+1) {
				break
			}
		}
	}
	prev := int64(0)
	if replacing {
		prev = el.Value.(*shardEntry[V]).size
	}
	if s.shardMax > 0 && sh.bytes-prev+size > s.shardMax {
		if s.cfg.Policy == EvictReject {
			if !replacing && s.cfg.MaxEntries > 0 {
				s.entries.Add(-1) // release the reserved slot
			}
			return 0, ErrFull
		}
		s.evictLocked(sh, el, s.shardMax-size+prev)
	}
	ver := explicit
	if ver == 0 {
		ver = s.lastVer.Add(1)
	}
	if replacing {
		e := el.Value.(*shardEntry[V])
		sh.bytes += size - e.size
		e.val, e.size, e.ver = v, size, ver
		sh.lru.MoveToFront(el)
		return ver, nil
	}
	sh.items[key] = sh.lru.PushFront(&shardEntry[V]{key: key, val: v, size: size, ver: ver})
	sh.bytes += size
	if s.cfg.MaxEntries <= 0 {
		s.entries.Add(1)
	}
	return ver, nil
}

// Version returns the version of the entry under key without
// refreshing its recency or counting a hit — a metadata peek, not a
// document lookup.
func (s *Sharded[V]) Version(key string) (uint64, bool) {
	sh := &s.shards[s.ShardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return 0, false
	}
	return el.Value.(*shardEntry[V]).ver, true
}

// LastVersion returns the store-wide version counter: the version most
// recently assigned (or mirrored) by any Put.
func (s *Sharded[V]) LastVersion() uint64 { return s.lastVer.Load() }

// evictLocked removes least-recently-used entries (skipping keep, the
// entry being replaced) until the shard's bytes drop to target.
func (s *Sharded[V]) evictLocked(sh *shard[V], keep *list.Element, target int64) {
	for sh.bytes > target {
		oldest := sh.lru.Back()
		if oldest != nil && oldest == keep {
			oldest = oldest.Prev()
		}
		if oldest == nil {
			return
		}
		e := oldest.Value.(*shardEntry[V])
		sh.lru.Remove(oldest)
		delete(sh.items, e.key)
		sh.bytes -= e.size
		sh.evictions++
		s.entries.Add(-1)
	}
}

// Delete removes key, reporting whether it was present.
func (s *Sharded[V]) Delete(key string) bool {
	return s.DeleteIf(key, nil)
}

// DeleteIf removes key only while cond holds for the currently stored
// value, evaluated under the shard lock — so a caller that snapshotted
// an entry (e.g. the idle janitor) cannot delete a replacement that
// was stored after its snapshot. A nil cond always deletes. It reports
// whether an entry was removed.
func (s *Sharded[V]) DeleteIf(key string, cond func(v V, size int64) bool) bool {
	sh := &s.shards[s.ShardFor(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*shardEntry[V])
	if cond != nil && !cond(e.val, e.size) {
		return false
	}
	sh.lru.Remove(el)
	delete(sh.items, key)
	sh.bytes -= e.size
	s.entries.Add(-1)
	return true
}

// Range visits entries shard by shard. Each shard is snapshotted under
// its lock, then f runs lock-free, so f may call back into the store.
func (s *Sharded[V]) Range(f func(key string, v V, size int64) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		snap := make([]*shardEntry[V], 0, len(sh.items))
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			snap = append(snap, el.Value.(*shardEntry[V]))
		}
		sh.mu.Unlock()
		for _, e := range snap {
			if !f(e.key, e.val, e.size) {
				return
			}
		}
	}
}

// Stats aggregates current fill and lifetime counters across shards.
func (s *Sharded[V]) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(s.shards))}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		ss := ShardStats{
			Entries: len(sh.items), Bytes: sh.bytes,
			Hits: sh.hits, Misses: sh.misses, Evictions: sh.evictions,
		}
		sh.mu.Unlock()
		st.Shards[i] = ss
		st.Entries += ss.Entries
		st.Bytes += ss.Bytes
		st.Hits += ss.Hits
		st.Misses += ss.Misses
		st.Evictions += ss.Evictions
	}
	return st
}

// Len returns the current number of entries.
func (s *Sharded[V]) Len() int { return int(s.entries.Load()) }
