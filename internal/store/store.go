// Package store is the storage layer of the serving stack: a keyed
// document store with explicit memory accounting, decoupled from both
// the HTTP server above it and the evaluation engine below it.
//
// The Store interface is deliberately small — Get/Put/Delete/Range/
// Stats — so the serving layer routes every document lookup through it
// without caring how entries are laid out. The one production
// implementation, Sharded, spreads entries over N independently locked
// shards with FNV-1a routing; see sharded.go. Values are opaque to the
// store: the caller supplies a size in bytes with every Put and the
// store enforces its configured budgets against that accounting.
package store

import "errors"

// ErrFull is returned by Put when admitting the entry would exceed a
// configured budget (entry count, or bytes under the Reject policy).
// Replacing an existing key is never rejected by the entry-count cap.
var ErrFull = errors.New("store: full")

// ErrTooLarge is returned by Put when a single entry is bigger than a
// whole shard's byte budget, so no amount of eviction could admit it.
var ErrTooLarge = errors.New("store: entry exceeds shard byte budget")

// Store is a keyed value store with byte-size accounting. All methods
// are safe for concurrent use.
//
// Every entry carries a monotonic version: Put assigns the next value
// of a store-wide counter, so for a fixed key versions strictly
// increase across replacements (and even across a Delete followed by a
// re-Put — the counter never goes backwards). The version is the
// staleness signal of the replication layer: a replica or cache
// holding version v of a document knows it is stale the moment it
// sees a version > v for the same key.
type Store[V any] interface {
	// Get returns the value stored under key.
	Get(key string) (V, bool)
	// Put stores v under key with the given size in bytes, replacing
	// any previous entry, and returns the entry's newly assigned
	// monotonic version. It returns ErrFull or ErrTooLarge when the
	// store's budgets refuse the entry.
	Put(key string, v V, size int64) (uint64, error)
	// Delete removes key, reporting whether it was present.
	Delete(key string) bool
	// Range calls f for every entry until f returns false. It takes a
	// point-in-time snapshot per shard; entries added or removed while
	// ranging may or may not be visited.
	Range(f func(key string, v V, size int64) bool)
	// Stats returns aggregate and per-shard statistics.
	Stats() Stats
}

// EvictionPolicy selects what Put does when a shard's byte budget is
// exhausted.
type EvictionPolicy int

const (
	// EvictLRU evicts least-recently-used entries from the shard until
	// the new entry fits. Get refreshes recency.
	EvictLRU EvictionPolicy = iota
	// EvictReject refuses the Put with ErrFull instead of evicting.
	EvictReject
)

// String names the policy as accepted by the -evict flag.
func (p EvictionPolicy) String() string {
	if p == EvictReject {
		return "reject"
	}
	return "lru"
}

// PolicyByName resolves a flag name to an EvictionPolicy.
func PolicyByName(name string) (EvictionPolicy, bool) {
	switch name {
	case "lru":
		return EvictLRU, true
	case "reject":
		return EvictReject, true
	}
	return 0, false
}

// ShardStats describes one shard's current fill and lifetime counters.
type ShardStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats aggregates the store: totals plus the per-shard breakdown (the
// routing quality is visible as the spread of Entries across Shards).
// Beyond /stats, the serving layer reads Entries and Bytes at every
// /metrics scrape (the xpath_documents and xpath_store_bytes gauges),
// so implementations must keep Stats cheap — per-shard counters, no
// full walks.
type Stats struct {
	Entries   int          `json:"entries"`
	Bytes     int64        `json:"bytes"`
	Hits      uint64       `json:"hits"`
	Misses    uint64       `json:"misses"`
	Evictions uint64       `json:"evictions"`
	Shards    []ShardStats `json:"shards"`
}
