package repro

// Benchmarks regenerating the paper's tables and figures as testing.B
// targets, one family per experiment:
//
//	Figure 2 left   → BenchmarkExp1*
//	Figure 2 right  → BenchmarkExp2*
//	Figure 3 left   → BenchmarkExp3*
//	Figure 3 right  → BenchmarkExp4*
//	Figure 4        → BenchmarkExp5*
//	Table V/Fig 12  → BenchmarkTable5*
//	Table VII       → BenchmarkTable7*
//	(ablations)     → BenchmarkEngines*, BenchmarkFragments*
//
// The naive benches are parameterized at query sizes that finish in
// reasonable time; the cmd/xpathbench tool runs the full sweeps with
// per-point caps, reproducing the '-' entries of the paper's tables.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/axes"
	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/corexpath"
	"repro/internal/datapool"
	"repro/internal/engine"
	"repro/internal/mincontext"
	"repro/internal/naive"
	"repro/internal/planner"
	"repro/internal/semantics"
	"repro/internal/topdown"
	"repro/internal/wadler"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xpatterns"
)

func rootCtx(d *xmltree.Document) semantics.Context {
	return semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
}

type evaluator interface {
	Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error)
}

func benchQuery(b *testing.B, eng evaluator, d *xmltree.Document, query string) {
	b.Helper()
	e, err := xpath.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(e, rootCtx(d)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Experiment 1 (Figure 2 left): //a/b(/parent::a/b)^k on DOC(2) ---

func BenchmarkExp1Naive(b *testing.B) {
	d := workload.Doc(2)
	for _, k := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchQuery(b, naive.New(d), d, workload.Exp1Query(k))
		})
	}
}

func BenchmarkExp1TopDown(b *testing.B) {
	d := workload.Doc(2)
	for _, k := range []int{4, 8, 16, 25} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchQuery(b, topdown.New(d), d, workload.Exp1Query(k))
		})
	}
}

// --- Experiment 2 (Figure 2 right): nested comparisons on DOC'(i) ---

func BenchmarkExp2Naive(b *testing.B) {
	for _, i := range []int{2, 10} {
		d := workload.DocPrime(i)
		for _, k := range []int{1, 2, 3} {
			b.Run(fmt.Sprintf("doc=%d/k=%d", i, k), func(b *testing.B) {
				benchQuery(b, naive.New(d), d, workload.Exp2Query(k))
			})
		}
	}
}

func BenchmarkExp2TopDown(b *testing.B) {
	for _, i := range []int{10, 200} {
		d := workload.DocPrime(i)
		for _, k := range []int{5, 20, 50} {
			b.Run(fmt.Sprintf("doc=%d/k=%d", i, k), func(b *testing.B) {
				benchQuery(b, topdown.New(d), d, workload.Exp2Query(k))
			})
		}
	}
}

// --- Experiment 3 (Figure 3 left): nested count() on DOC(i) ---

func BenchmarkExp3Naive(b *testing.B) {
	for _, i := range []int{2, 10} {
		d := workload.Doc(i)
		for _, k := range []int{2, 4} {
			b.Run(fmt.Sprintf("doc=%d/k=%d", i, k), func(b *testing.B) {
				benchQuery(b, naive.New(d), d, workload.Exp3Query(k))
			})
		}
	}
}

func BenchmarkExp3DataPool(b *testing.B) {
	for _, i := range []int{10, 200} {
		d := workload.Doc(i)
		for _, k := range []int{4, 8} {
			b.Run(fmt.Sprintf("doc=%d/k=%d", i, k), func(b *testing.B) {
				q := xpath.MustParse(workload.Exp3Query(k))
				b.ResetTimer()
				for j := 0; j < b.N; j++ {
					ev, _ := datapool.NewEvaluator(d)
					if _, err := ev.Evaluate(q, rootCtx(d)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Experiment 4 (Figure 3 right): fixed query, document sweep ---

func BenchmarkExp4CoreXPath(b *testing.B) {
	q := workload.Exp4Query(20)
	for _, n := range []int{5000, 20000, 50000} {
		d := workload.Doc(n)
		b.Run(fmt.Sprintf("doc=%d", n), func(b *testing.B) {
			ev := corexpath.New(d)
			ev.Parallelism = runtime.GOMAXPROCS(0) // 1 under -cpu=1: same sequential path as before
			benchQuery(b, ev, d, q)
		})
	}
}

func BenchmarkExp4TopDown(b *testing.B) {
	q := workload.Exp4Query(20)
	for _, n := range []int{50, 100, 200} {
		d := workload.Doc(n)
		b.Run(fmt.Sprintf("doc=%d", n), func(b *testing.B) {
			benchQuery(b, topdown.New(d), d, q)
		})
	}
}

// --- Experiment 5 (Figure 4): forward-axis chains ---

func BenchmarkExp5FollowingNaive(b *testing.B) {
	for _, i := range []int{20, 50} {
		d := workload.Doc(i)
		for _, k := range []int{3, 5} {
			b.Run(fmt.Sprintf("doc=%d/k=%d", i, k), func(b *testing.B) {
				benchQuery(b, naive.New(d), d, workload.Exp5FollowingQuery(k))
			})
		}
	}
}

func BenchmarkExp5DescendantNaive(b *testing.B) {
	for _, i := range []int{20, 50} {
		d := workload.DeepDoc(i)
		for _, k := range []int{3, 5} {
			b.Run(fmt.Sprintf("depth=%d/k=%d", i, k), func(b *testing.B) {
				benchQuery(b, naive.New(d), d, workload.Exp5DescendantQuery(k))
			})
		}
	}
}

func BenchmarkExp5TopDown(b *testing.B) {
	d := workload.Doc(50)
	for _, k := range []int{5, 10, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchQuery(b, topdown.New(d), d, workload.Exp5FollowingQuery(k))
		})
	}
}

// --- Table V / Figure 12: classic vs data pool ---

func BenchmarkTable5Classic(b *testing.B) {
	d := workload.Doc(10)
	for _, k := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchQuery(b, naive.New(d), d, workload.Exp3Query(k))
		})
	}
}

func BenchmarkTable5DataPool(b *testing.B) {
	for _, i := range []int{10, 200} {
		d := workload.Doc(i)
		for _, k := range []int{4, 8} {
			b.Run(fmt.Sprintf("doc=%d/k=%d", i, k), func(b *testing.B) {
				q := xpath.MustParse(workload.Exp3Query(k))
				b.ResetTimer()
				for j := 0; j < b.N; j++ {
					ev, _ := datapool.NewEvaluator(d)
					if _, err := ev.Evaluate(q, rootCtx(d)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Table VII: IE6 model vs XMLTaskforce (top-down) ---

func BenchmarkTable7XMLTaskforce(b *testing.B) {
	for _, i := range []int{10, 200, 1000, 2000} {
		d := workload.DocPrime(i)
		for _, k := range []int{1, 10, 50} {
			b.Run(fmt.Sprintf("doc=%d/k=%d", i, k), func(b *testing.B) {
				benchQuery(b, topdown.New(d), d, workload.Exp2Query(k))
			})
		}
	}
}

func BenchmarkTable7IE6Model(b *testing.B) {
	for _, i := range []int{10, 20} {
		d := workload.DocPrime(i)
		for _, k := range []int{2, 3} {
			b.Run(fmt.Sprintf("doc=%d/k=%d", i, k), func(b *testing.B) {
				benchQuery(b, naive.New(d), d, workload.Exp2Query(k))
			})
		}
	}
}

// --- Ablations: every engine on the same workloads ---

// BenchmarkEnginesGeneral compares all general-purpose engines on a
// full-XPath query over a realistic catalog.
func BenchmarkEnginesGeneral(b *testing.B) {
	d := workload.Catalog(100)
	const q = "//product[count(child::*) > 2]/child::name"
	engines := map[string]evaluator{
		"naive":         naive.New(d),
		"topdown":       topdown.New(d),
		"mincontext":    mincontext.New(d),
		"optmincontext": wadler.New(d),
		"bottomup":      bottomup.New(d),
	}
	for name, eng := range engines {
		b.Run(name, func(b *testing.B) {
			benchQuery(b, eng, d, q)
		})
	}
}

// BenchmarkFragmentsCoreXPath pits the linear-time algebra against the
// general engines on a Core XPath query (Corollary 11.5's point).
func BenchmarkFragmentsCoreXPath(b *testing.B) {
	d := workload.Catalog(1000)
	const q = "//product[child::discontinued]/child::name"
	engines := map[string]evaluator{
		"corexpath":     corexpath.New(d),
		"xpatterns":     xpatterns.New(d),
		"topdown":       topdown.New(d),
		"mincontext":    mincontext.New(d),
		"optmincontext": wadler.New(d),
	}
	for name, eng := range engines {
		b.Run(name, func(b *testing.B) {
			benchQuery(b, eng, d, q)
		})
	}
}

// BenchmarkFragmentsWadler measures the Wadler-fragment bottom-up
// optimization against plain MinContext on a position-heavy query.
func BenchmarkFragmentsWadler(b *testing.B) {
	d := workload.Catalog(500)
	const q = "//product[child::price = 10 and position() != last()]"
	engines := map[string]evaluator{
		"optmincontext": wadler.New(d),
		"mincontext":    mincontext.New(d),
		"topdown":       topdown.New(d),
	}
	for name, eng := range engines {
		b.Run(name, func(b *testing.B) {
			benchQuery(b, eng, d, q)
		})
	}
}

// BenchmarkAxes measures the axis evaluator through the Core XPath
// algebra (whole queries including parsing-independent evaluation).
func BenchmarkAxes(b *testing.B) {
	d := workload.Catalog(2000)
	for _, q := range []string{"//*", "//*/following::*", "//*/ancestor::*"} {
		b.Run(q, func(b *testing.B) {
			benchQuery(b, corexpath.New(d), d, q)
		})
	}
}

// BenchmarkAxesEval measures axis evaluation in isolation in its
// steady state: a caller-reused output buffer plus the per-document
// scratch pool mean zero heap allocations per evaluation. The loop
// goes through axes.EvalPar with a GOMAXPROCS worker budget — under
// -cpu=1 that is the exact sequential EvalInto path (and still zero
// allocations); under -cpu=4 it exercises the chunked parallel fills.
func BenchmarkAxesEval(b *testing.B) {
	d := workload.Catalog(2000)
	ctxSet := d.Index().Named("product")
	cases := []struct {
		name string
		axis axes.Axis
	}{
		{"descendant", axes.Descendant},
		{"descendant-or-self", axes.DescendantOrSelf},
		{"ancestor", axes.Ancestor},
		{"following", axes.Following},
		{"preceding", axes.Preceding},
		{"child", axes.Child},
		{"following-sibling", axes.FollowingSibling},
	}
	ctx := context.Background()
	p := runtime.GOMAXPROCS(0)
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var buf xmltree.NodeSet
			var err error
			buf, err = axes.EvalPar(ctx, d, c.axis, ctxSet, buf, p) // warm the buffer and scratch pool
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if buf, err = axes.EvalPar(ctx, d, c.axis, ctxSet, buf, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAxesEvalNamed measures the label-index fast path: the axis
// image restricted to one element name, served from the posting list.
func BenchmarkAxesEvalNamed(b *testing.B) {
	d := workload.Catalog(2000)
	root := xmltree.NodeSet{d.RootID()}
	ctx := context.Background()
	p := runtime.GOMAXPROCS(0)
	b.Run("descendant::product", func(b *testing.B) {
		var buf xmltree.NodeSet
		var err error
		buf, err = axes.EvalNamedPar(ctx, d, axes.Descendant, root, "product", buf, p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if buf, err = axes.EvalNamedPar(ctx, d, axes.Descendant, root, "product", buf, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBitset measures the packed set operations the Core XPath
// algebra is built on.
func BenchmarkBitset(b *testing.B) {
	const n = 1 << 16
	x, y := xmltree.NewBitset(n), xmltree.NewBitset(n)
	for i := 0; i < n; i += 3 {
		x.Add(xmltree.NodeID(i))
	}
	for i := 0; i < n; i += 7 {
		y.Add(xmltree.NodeID(i))
	}
	b.Run("union", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x.UnionWith(y)
		}
	})
	b.Run("par-union", func(b *testing.B) {
		p := runtime.GOMAXPROCS(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x.ParUnion(y, p)
		}
	})
	b.Run("count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if x.Count() == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// --- Serving layer: compiled-query cache and batch worker pool ---

// BenchmarkServingCachedVsCold measures what the internal/engine cache
// saves per request: "cold" compiles the query on every request (parse
// + normalize + classify + evaluate), "cached" hits the compiled-query
// LRU and only evaluates. On a selective Core XPath query — long
// query, small touched node set, the common shape of selective serving
// traffic, where compilation dominates — the cached path is well over
// 10× faster.
func BenchmarkServingCachedVsCold(b *testing.B) {
	d := workload.Doc(2)
	src := "//absent" + strings.Repeat("/child::a", 60)
	b.Run("cold", func(b *testing.B) {
		en := core.NewEngine(d, core.Auto)
		for i := 0; i < b.N; i++ {
			q, err := core.Compile(src)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := en.Evaluate(q, core.Context{Node: d.RootID(), Pos: 1, Size: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := engine.New(engine.Options{}).NewSession(d)
		if _, err := s.Query(src); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServingBatchWorkers measures batch throughput scaling with
// the worker pool on a realistic catalog workload. Evaluation is pure
// CPU, so wall-clock scaling tracks available cores: with GOMAXPROCS=1
// every worker count measures the same (plus small pool overhead); on
// an m-core machine throughput grows toward m× until workers exceed
// cores.
func BenchmarkServingBatchWorkers(b *testing.B) {
	d := workload.Catalog(400)
	batch := make([]string, 0, 96)
	for len(batch) < 96 {
		batch = append(batch,
			"count(//product)",
			"//product[child::discontinued]/child::name",
			"sum(//price)",
			"//product[child::price > 50]",
		)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := engine.New(engine.Options{Workers: workers}).NewSession(d)
			s.Batch(batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, res := range s.Batch(batch) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// --- Adaptive strategy planner: planned Auto vs fixed strategies ---

// plannerBenchWarmup is enough planned iterations for the adaptive
// planner to pass several explore cycles (default cadence: every 16th
// decision per class) and settle on the fastest strategy before the
// timer starts: 128 decisions give every alternative at least two
// explore samples, so one noisy timing cannot misdirect the EWMAs.
const plannerBenchWarmup = 128

// benchPlannedSession measures a planner-routed session in its
// converged state: warmup runs with exploration on, so the route the
// timer sees was actually discovered by the explore/observe loop; then
// exploration is frozen, because the measured window reports routing
// quality, not the exploration tax (a serving-time cadence knob that a
// single-query microbenchmark would charge entirely to one class).
func benchPlannedSession(b *testing.B, d *xmltree.Document, src string) {
	b.Helper()
	e := engine.New(engine.Options{Strategy: core.Auto, Planner: planner.Adaptive})
	s := e.NewSession(d)
	for i := 0; i < plannerBenchWarmup; i++ {
		if res := s.Do(src); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	e.Planner().SetExploreEvery(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.Do(src); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// benchFixedSession measures the same session path pinned to one
// strategy, so planned-vs-fixed differences are routing, not plumbing.
func benchFixedSession(b *testing.B, st core.Strategy, d *xmltree.Document, src string) {
	b.Helper()
	s := engine.New(engine.Options{Strategy: st}).NewSession(d)
	if res := s.Do(src); res.Err != nil {
		b.Fatal(res.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.Do(src); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// plannerFamilyBench runs one planned-vs-fixed family. The sub-bench
// names feed `benchjson compare`, which groups siblings by parent name
// and fails CI if planned is slower than the best fixed sibling beyond
// the noise threshold.
func plannerFamilyBench(b *testing.B, d *xmltree.Document, src string, fixed []core.Strategy) {
	b.Run("planned", func(b *testing.B) { benchPlannedSession(b, d, src) })
	for _, st := range fixed {
		b.Run(st.String(), func(b *testing.B) { benchFixedSession(b, st, d, src) })
	}
}

// BenchmarkPlannerExp1 runs the Experiment-1 family on a document big
// enough that the engines genuinely separate (the query is Core XPath,
// so the linear algebra clearly wins); on tiny documents every engine
// finishes within scheduler noise of every other and the comparison
// would measure the machine, not the routing.
func BenchmarkPlannerExp1(b *testing.B) {
	plannerFamilyBench(b, workload.Doc(500), workload.Exp1Query(12),
		[]core.Strategy{core.CoreXPath, core.TopDown, core.MinContext, core.OptMinContext})
}

func BenchmarkPlannerExp3(b *testing.B) {
	plannerFamilyBench(b, workload.Doc(50), workload.Exp3Query(2),
		[]core.Strategy{core.TopDown, core.MinContext, core.OptMinContext})
}

// BenchmarkPlannerExp4 skips topdown and plain mincontext: both are
// super-linear on this document sweep (mincontext is ~1000× corexpath
// at |D|=500) and would only burn CI minutes without tightening the
// "planned tracks the best fixed strategy" check.
func BenchmarkPlannerExp4(b *testing.B) {
	plannerFamilyBench(b, workload.Doc(500), workload.Exp4Query(20),
		[]core.Strategy{core.OptMinContext, core.CoreXPath})
}

// BenchmarkParser measures query compilation.
func BenchmarkParser(b *testing.B) {
	q := workload.Exp2Query(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xpath.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXMLParse measures document loading.
func BenchmarkXMLParse(b *testing.B) {
	src := workload.Catalog(1000).XMLString()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmltree.ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}
