#!/usr/bin/env bash
# reshard_smoke.sh — end-to-end replication + resharding round trip:
# boots a 2-backend ring behind a replicating router, registers a
# corpus through it, then grows the ring to 3 backends with
# cmd/xpathreshard (dry-run first, then the real move) and verifies
# every document answers on the new ring — including from the node
# that did not exist when the corpus was written — and that a re-run
# is an idempotent no-op. CI runs this after cluster_smoke.sh:
#
#   bash scripts/reshard_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
bin=$(mktemp -d)
cleanup() {
  jobs -p | xargs -r kill 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/xpathserve" ./cmd/xpathserve
go build -o "$bin/xpathrouter" ./cmd/xpathrouter
go build -o "$bin/xpathreshard" ./cmd/xpathreshard

old_peers=http://127.0.0.1:7111,http://127.0.0.1:7112
new_peers=http://127.0.0.1:7111,http://127.0.0.1:7112,http://127.0.0.1:7113

"$bin/xpathserve" -addr 127.0.0.1:7111 &
"$bin/xpathserve" -addr 127.0.0.1:7112 &
"$bin/xpathrouter" -addr 127.0.0.1:7110 -peers "$old_peers" \
  -replicas 1 -replica-retry 1 -timeout 5s &

wait_for() {
  for _ in $(seq 1 50); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timed out waiting for $1" >&2
  return 1
}
wait_for http://127.0.0.1:7111/healthz
wait_for http://127.0.0.1:7112/healthz
wait_for http://127.0.0.1:7110/health

# A corpus of 8 documents, written with 1 replica each.
for i in $(seq 0 7); do
  curl -fsS http://127.0.0.1:7110/documents \
    -d "{\"name\":\"doc-$i\",\"xml\":\"<a><b/><b/></a>\"}" >/dev/null
done

# The third backend joins; the old ring does not know it yet.
"$bin/xpathserve" -addr 127.0.0.1:7113 &
wait_for http://127.0.0.1:7113/healthz

# Dry run: a plan with pending copies, nothing moved.
plan=$("$bin/xpathreshard" -from "$old_peers" -to "$new_peers" -replicas 1 -dry-run)
echo "$plan" | grep -q 'copy' || { echo "dry run planned no copies:" >&2; echo "$plan" >&2; exit 1; }
n=$(curl -fsS http://127.0.0.1:7113/healthz | grep -o '"documents": *[0-9]*' | grep -o '[0-9]*$')
[ "$n" -eq 0 ] || { echo "dry run moved $n documents onto the new node" >&2; exit 1; }

# The real move: old 2-ring -> new 3-ring, 1 replica, pruning the
# copies the new placement no longer wants.
"$bin/xpathreshard" -from "$old_peers" -to "$new_peers" -replicas 1 -prune

# The new node now owns part of the corpus.
n=$(curl -fsS http://127.0.0.1:7113/healthz | grep -o '"documents": *[0-9]*' | grep -o '[0-9]*$')
[ "$n" -ge 1 ] || { echo "new node holds no documents after reshard" >&2; exit 1; }
echo "new node :7113 holds $n documents"

# A router over the NEW ring answers every document with the right
# value — zero lost documents. The answer cache is off so every answer
# provably comes from a backend.
"$bin/xpathrouter" -addr 127.0.0.1:7114 -peers "$new_peers" \
  -replicas 1 -replica-retry 1 -ring-generation 2 -answer-cache 0 -timeout 5s &
wait_for http://127.0.0.1:7114/health
for i in $(seq 0 7); do
  out=$(curl -fsS "http://127.0.0.1:7114/query?doc=doc-$i&q=count(//b)")
  echo "$out" | grep -q '"number": *2' || { echo "doc-$i lost in reshard: $out" >&2; exit 1; }
done

# Idempotent: a second run copies nothing.
again=$("$bin/xpathreshard" -from "$old_peers" -to "$new_peers" -replicas 1 -prune)
echo "$again" | grep -q 'resharded: 8 documents, 0 copies' \
  || { echo "re-run was not a no-op:" >&2; echo "$again" >&2; exit 1; }

echo "reshard smoke: OK (8 documents, 2 -> 3 nodes, new node holds $n, idempotent re-run)"
