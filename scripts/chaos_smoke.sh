#!/usr/bin/env bash
# chaos_smoke.sh — fault-injection smoke of the resilience layer: boots
# three xpathserve backends (one clean, one with injected /query
# latency, one that cuts its /batch stream mid-flight) behind an
# xpathrouter with replication, breakers, and the anti-entropy repair
# loop on. It asserts the routed surface absorbs the seeded faults
# (every /query answered, /batch delivers exactly one line per job
# through the mid-stream cut), then SIGKILLs a backend and asserts the
# queries keep answering from replicas while its circuit breaker opens
# (visible in xpathrouter_breaker_state and /health). A write issued
# while the owner is dead diverges the replica set; the backend is then
# restarted empty and the repair loop must re-copy its documents at the
# authoritative version with no manual reshard
# (xpathrouter_repair_copies_total moves, versions converge). Finally
# both a backend and the router take a SIGTERM and must drain: exit 0
# with in-flight work finished. CI runs this after the unit suites; it
# is also handy locally:
#
#   bash scripts/chaos_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
bin=$(mktemp -d)
cleanup() {
  jobs -p | xargs -r kill 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/xpathserve" ./cmd/xpathserve
go build -o "$bin/xpathrouter" ./cmd/xpathrouter

# Backend A is clean; B answers /query 200ms late (inside the router's
# timeout — latency the retry path must tolerate, not a failure); C
# cuts its first /batch response after one line, exercising the
# one-line-per-job invariant of the merged stream.
"$bin/xpathserve" -addr 127.0.0.1:7201 2>"$bin/backend-7201.log" &
"$bin/xpathserve" -addr 127.0.0.1:7202 \
  -fault-spec 'latency:path=/query;d=200ms' -fault-seed 42 \
  2>"$bin/backend-7202.log" &
backendB_pid=$!
start_c() {
  "$bin/xpathserve" -addr 127.0.0.1:7203 "$@" 2>>"$bin/backend-7203.log" &
  backendC_pid=$!
}
start_c -fault-spec 'cut:path=/batch;after=1;times=1' -fault-seed 42

# Router: replication on, short health/breaker/repair periods so the
# chaos round trips fit a smoke run. The answer cache is off so every
# asserted answer provably crossed the wire; the retry budget is
# unlimited because this run is deliberately fault-dense.
"$bin/xpathrouter" -addr 127.0.0.1:7200 \
  -peers http://127.0.0.1:7201,http://127.0.0.1:7202,http://127.0.0.1:7203 \
  -replicas 1 -replica-retry 2 -timeout 3s \
  -health-interval 500ms -breaker-threshold 2 -breaker-cooldown 2s \
  -repair-interval 1s -retry-budget 0 -answer-cache 0 \
  2>"$bin/router.log" &
router_pid=$!

wait_for() {
  for _ in $(seq 1 50); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timed out waiting for $1" >&2
  return 1
}
wait_for http://127.0.0.1:7201/healthz
wait_for http://127.0.0.1:7202/healthz
wait_for http://127.0.0.1:7203/healthz
wait_for http://127.0.0.1:7200/health

# A Prometheus sample's value, by exact name{labels} prefix (0 when the
# metric has not moved into existence yet).
mval() {
  curl -fsS "http://127.0.0.1:$1/metrics" | grep -v '^#' | grep -F "$2 " | awk '{print $2; exit}' || true
}

# Register 12 documents; FNV placement spreads them over all three
# backends, -replicas 1 mirrors each onto its ring successor.
for i in $(seq 0 11); do
  curl -fsS http://127.0.0.1:7200/documents \
    -d "{\"name\":\"doc-$i\",\"xml\":\"<a><b/><b/></a>\"}" >/dev/null
done

# Every routed query answers correctly — B's are simply 200ms late —
# and the node tags reveal each document's owner.
b_docs=""
c_docs=""
for i in $(seq 0 11); do
  out=$(curl -fsS "http://127.0.0.1:7200/query?doc=doc-$i&q=count(//b)")
  echo "$out" | grep -q '"number": *2' || { echo "bad routed query for doc-$i: $out" >&2; exit 1; }
  port=$(echo "$out" | grep -o '"node": *"127.0.0.1:720[1-3]"' | grep -o '720[1-3]' | head -1)
  [ "$port" = 7202 ] && b_docs="$b_docs doc-$i"
  [ "$port" = 7203 ] && c_docs="$c_docs doc-$i"
done
[ -n "$b_docs" ] || { echo "no document owned by backend :7202; placement changed?" >&2; exit 1; }
[ -n "$c_docs" ] || { echo "no document owned by backend :7203; placement changed?" >&2; exit 1; }
echo "owners: 7202 has$b_docs; 7203 has$c_docs"

# Grouped /batch through the mid-stream cut: C kills its stream after
# one line, the router must still deliver exactly one line per job
# (the cut group's unfinished jobs become typed error lines).
all_docs=$(seq 0 11 | sed 's/.*/"doc-&"/' | paste -sd, -)
batch=$(curl -fsSN http://127.0.0.1:7200/batch \
  -d "{\"docs\":[$all_docs],\"queries\":[\"count(//b)\",\"sum(//b) = 0\"]}")
lines=$(echo "$batch" | grep -c '"index":' || true)
[ "$lines" -eq 24 ] || { echo "cut batch returned $lines lines, want exactly 24:" >&2; echo "$batch" >&2; exit 1; }
echo "batch under mid-stream cut: 24/24 lines"

# The cut's trigger budget (times=1) is spent: the same batch now
# streams clean.
batch=$(curl -fsSN http://127.0.0.1:7200/batch \
  -d "{\"docs\":[$all_docs],\"queries\":[\"count(//b)\",\"sum(//b) = 0\"]}")
lines=$(echo "$batch" | grep -c '"index":' || true)
errs=$(echo "$batch" | grep -c '"error"' || true)
[ "$lines" -eq 24 ] && [ "$errs" -eq 0 ] \
  || { echo "post-cut batch: $lines lines, $errs errors, want 24/0:" >&2; echo "$batch" >&2; exit 1; }

# --- Breaker: SIGKILL C, queries fail over, its breaker opens --------
kill -9 "$backendC_pid"
wait "$backendC_pid" 2>/dev/null || true
echo "SIGKILLed backend :7203"
for d in $c_docs $c_docs $c_docs; do
  out=$(curl -fsS "http://127.0.0.1:7200/query?doc=$d&q=count(//b)")
  echo "$out" | grep -q '"number": *2' || { echo "$d lost after owner kill: $out" >&2; exit 1; }
done
breaker=""
for _ in $(seq 1 20); do
  breaker=$(mval 7200 'xpathrouter_breaker_state{peer="127.0.0.1:7203"}')
  [ "${breaker:-0}" = 2 ] && break
  curl -fsS "http://127.0.0.1:7200/query?doc=${c_docs##* }&q=count(//b)" >/dev/null
  sleep 0.3
done
[ "${breaker:-0}" = 2 ] \
  || { echo "breaker for :7203 never opened (state=$breaker)" >&2; exit 1; }
curl -fsS http://127.0.0.1:7200/health | grep -q '"breaker": *"open"' \
  || { echo "/health does not show the open breaker" >&2; exit 1; }
echo "breaker for :7203 open (gauge=2, /health agrees)"

# A write while the owner is dead: the registration diverts to the
# replica chain and bumps the version, diverging from whatever a
# revived owner would hold.
divergent=${c_docs##* }
curl -fsS http://127.0.0.1:7200/documents \
  -d "{\"name\":\"$divergent\",\"xml\":\"<a><b/><b/><b/></a>\"}" >/dev/null

# --- Repair: restart C empty; anti-entropy must re-copy its docs -----
start_c
wait_for http://127.0.0.1:7203/healthz
copies=""
for _ in $(seq 1 60); do
  copies=$(mval 7200 'xpathrouter_repair_copies_total')
  [ "${copies:-0}" -ge 1 ] && break
  sleep 0.5
done
[ "${copies:-0}" -ge 1 ] \
  || { echo "repair loop issued no copies after C's restart" >&2; exit 1; }

# Convergence: the divergent document must land on C at the authorit-
# ative (post-divergence) version, with the authoritative content.
ver=""
for _ in $(seq 1 60); do
  ver=$(curl -fsS "http://127.0.0.1:7203/documents?name=$divergent" 2>/dev/null \
    | grep -o '"version": *[0-9]*' | grep -o '[0-9]*$' | head -1)
  [ "${ver:-0}" -ge 2 ] && break
  sleep 0.5
done
[ "${ver:-0}" -ge 2 ] \
  || { echo "$divergent on revived :7203 at version ${ver:-none}, want >= 2 (repair convergence)" >&2; exit 1; }
out=$(curl -fsS "http://127.0.0.1:7200/query?doc=$divergent&q=count(//b)")
echo "$out" | grep -q '"number": *3' || { echo "post-repair content stale: $out" >&2; exit 1; }
echo "repair: $copies copies, $divergent converged at v$ver"

# The revived peer's breaker closes again once probes succeed.
breaker=""
for _ in $(seq 1 20); do
  breaker=$(mval 7200 'xpathrouter_breaker_state{peer="127.0.0.1:7203"}')
  [ "${breaker:-9}" = 0 ] && break
  sleep 0.3
done
[ "${breaker:-9}" = 0 ] \
  || { echo "breaker for revived :7203 never closed (state=$breaker)" >&2; exit 1; }

# --- Drain: SIGTERM must exit 0 with requests still answered ---------
kill -TERM "$backendB_pid"
if ! wait "$backendB_pid"; then
  echo "backend :7202 did not drain cleanly on SIGTERM" >&2
  exit 1
fi
echo "backend :7202 drained on SIGTERM"
for d in $b_docs; do
  out=$(curl -fsS "http://127.0.0.1:7200/query?doc=$d&q=count(//b)")
  echo "$out" | grep -q '"number"' || { echo "$d lost after owner drain: $out" >&2; exit 1; }
done

kill -TERM "$router_pid"
if ! wait "$router_pid"; then
  echo "router did not drain cleanly on SIGTERM" >&2
  exit 1
fi
echo "router drained on SIGTERM"

echo "chaos smoke: OK (faults absorbed, breaker cycle observed, repair converged, drains clean)"
