#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of the cluster layer: boots
# two real xpathserve backends plus an xpathrouter in front (with
# write-time replication and the answer cache on), registers documents
# through the router, then drives a routed /query and a scatter-gather
# streamed /batch and checks the index/doc/node tags. It then kills
# one backend mid-run and asserts the routed query is served from the
# replica, and that repeated identical queries hit the router answer
# cache (with a re-registration invalidating it). The observability
# section scrapes /metrics on the router and the owning backend around
# a traced query and asserts the per-path counters move and the same
# X-Request-Id shows up in the backend's log. CI runs this after
# the unit suites; it is also handy locally:
#
#   bash scripts/cluster_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.." || exit 1
bin=$(mktemp -d)
cleanup() {
  jobs -p | xargs -r kill 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/xpathserve" ./cmd/xpathserve
go build -o "$bin/xpathrouter" ./cmd/xpathrouter

# Backend logs are captured to files: the observability section greps
# them for the routed request's X-Request-Id.
"$bin/xpathserve" -addr 127.0.0.1:7101 2>"$bin/backend-7101.log" &
"$bin/xpathserve" -addr 127.0.0.1:7102 2>"$bin/backend-7102.log" &
backend2_pid=$!
"$bin/xpathrouter" -addr 127.0.0.1:7100 \
  -peers http://127.0.0.1:7101,http://127.0.0.1:7102 \
  -replicas 1 -replica-retry 1 -timeout 5s &

wait_for() {
  for _ in $(seq 1 50); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timed out waiting for $1" >&2
  return 1
}
wait_for http://127.0.0.1:7101/healthz
wait_for http://127.0.0.1:7102/healthz
wait_for http://127.0.0.1:7100/health

# The router's /health must describe the placement ring.
curl -fsS http://127.0.0.1:7100/health | grep -q '"generation": *1' \
  || { echo "router /health carries no ring description" >&2; exit 1; }

# Register 8 documents through the router; the FNV-1a partitioning
# spreads doc-0..doc-7 across both backends, and -replicas 1 mirrors
# each one onto its ring successor.
for i in $(seq 0 7); do
  curl -fsS http://127.0.0.1:7100/documents \
    -d "{\"name\":\"doc-$i\",\"xml\":\"<a><b/><b/></a>\"}" >/dev/null
done

# Placement check: with 1 replica on a 2-node ring, every backend
# holds every document.
for port in 7101 7102; do
  n=$(curl -fsS "http://127.0.0.1:$port/healthz" | grep -o '"documents": *[0-9]*' | grep -o '[0-9]*$')
  [ "$n" -eq 8 ] || { echo "backend :$port holds $n documents, want all 8 (replication)" >&2; exit 1; }
  echo "backend :$port holds $n documents"
done

# Routed single-document query: correct value, node provenance tag.
out=$(curl -fsS 'http://127.0.0.1:7100/query?doc=doc-0&q=count(//b)')
echo "$out" | grep -q '"number": *2' || { echo "bad routed query: $out" >&2; exit 1; }
echo "$out" | grep -q '"node": *"127.0.0.1:710' || { echo "missing node tag: $out" >&2; exit 1; }

# Answer cache: the identical query again must be a hit, visible in
# /stats.
curl -fsS 'http://127.0.0.1:7100/query?doc=doc-0&q=count(//b)' >/dev/null
hits=$(curl -fsS http://127.0.0.1:7100/stats | grep -A6 '"answer_cache"' | grep -o '"hits": *[0-9]*' | grep -o '[0-9]*$')
[ "${hits:-0}" -ge 1 ] || { echo "repeated identical query produced no cache hit (hits=$hits)" >&2; exit 1; }
echo "answer cache hits: $hits"

# Re-registering the document invalidates the cached answer: the next
# query must see the new content.
curl -fsS http://127.0.0.1:7100/documents \
  -d '{"name":"doc-0","xml":"<a><b/><b/><b/></a>"}' >/dev/null
out=$(curl -fsS 'http://127.0.0.1:7100/query?doc=doc-0&q=count(//b)')
echo "$out" | grep -q '"number": *3' || { echo "stale answer after re-registration: $out" >&2; exit 1; }
inval=$(curl -fsS http://127.0.0.1:7100/stats | grep -A6 '"answer_cache"' | grep -o '"invalidations": *[0-9]*' | grep -o '[0-9]*$')
[ "${inval:-0}" -ge 1 ] || { echo "re-registration produced no invalidation (invalidations=$inval)" >&2; exit 1; }

# Scatter-gather batch across all 8 documents, 2 queries each: 16
# streamed NDJSON lines tagged with index/doc/node, covering both
# backend nodes (jobs are grouped per owning node, so this opens
# exactly one backend stream per node).
batch=$(curl -fsSN http://127.0.0.1:7100/batch \
  -d '{"docs":["doc-1","doc-2","doc-3","doc-4","doc-5","doc-6","doc-7"],"queries":["count(//b)","sum(//b) = 0"]}')
# grep -c exits 1 on zero matches but still prints 0; don't let set -e
# kill the script before the diagnostic below runs.
lines=$(echo "$batch" | grep -c '"index":' || true)
[ "$lines" -eq 14 ] || { echo "batch returned $lines lines, want 14:" >&2; echo "$batch" >&2; exit 1; }
nodes=$(echo "$batch" | grep -o '"node":"127.0.0.1:[0-9]*"' | sort -u | wc -l)
[ "$nodes" -eq 2 ] || { echo "batch lines from $nodes node(s), want 2:" >&2; echo "$batch" >&2; exit 1; }

# --- Observability: metrics deltas and request-ID correlation -------
# A Prometheus sample's value, by exact name{labels} prefix (0 when
# the metric has not been registered or scraped into existence yet).
mval() {
  curl -fsS "http://127.0.0.1:$1/metrics" | grep -F "$2 " | awk '{print $2; exit}' || true
}

router_q_before=$(mval 7100 'router_http_requests_total{path="/query"}')
b7101_q_before=$(mval 7101 'xpath_http_requests_total{path="/query"}')
b7102_q_before=$(mval 7102 'xpath_http_requests_total{path="/query"}')

# One traced routed query, response headers captured for the minted
# X-Request-Id. ?trace=1 bypasses the answer cache, so the owning
# backend provably serves it.
out=$(curl -fsS -D "$bin/trace-headers" \
  'http://127.0.0.1:7100/query?doc=doc-0&q=count(//b)&trace=1')
echo "$out" | grep -q '"trace"' || { echo "?trace=1 returned no trace: $out" >&2; exit 1; }
echo "$out" | grep -q '"name": *"forward"' || { echo "router trace has no forward span: $out" >&2; exit 1; }
req_id=$(tr -d '\r' <"$bin/trace-headers" | awk 'tolower($1)=="x-request-id:" {print $2; exit}')
[ -n "$req_id" ] || { echo "router minted no X-Request-Id" >&2; exit 1; }
echo "$out" | grep -q "\"request_id\": *\"$req_id\"" \
  || { echo "trace does not carry the response's request id $req_id: $out" >&2; exit 1; }

# The owning backend is whichever node the response was tagged with.
owner_port=$(echo "$out" | grep -o '"node": *"127.0.0.1:[0-9]*"' | grep -o '710[0-9]' | head -1)
[ -n "$owner_port" ] || { echo "traced response has no node tag: $out" >&2; exit 1; }

# Counter deltas: exactly one more routed /query on the router, at
# least one more served /query on the owning backend.
router_q_after=$(mval 7100 'router_http_requests_total{path="/query"}')
owner_before=$b7101_q_before
[ "$owner_port" = 7102 ] && owner_before=$b7102_q_before
owner_after=$(mval "$owner_port" 'xpath_http_requests_total{path="/query"}')
[ "$((${router_q_after:-0} - ${router_q_before:-0}))" -eq 1 ] \
  || { echo "router /query counter delta != 1 ($router_q_before -> $router_q_after)" >&2; exit 1; }
[ "$((${owner_after:-0} - ${owner_before:-0}))" -ge 1 ] \
  || { echo "owning backend :$owner_port /query counter did not move ($owner_before -> $owner_after)" >&2; exit 1; }

# The scrape itself must be well-formed Prometheus text: every
# non-comment line is name{labels} value.
curl -fsS http://127.0.0.1:7100/metrics \
  | awk '!/^#/ && NF && $0 !~ /^[a-z][a-z0-9_]*({[^}]*})? [0-9eE+.-]+$/ {print; bad=1} END {exit bad}' \
  || { echo "router /metrics has malformed sample lines" >&2; exit 1; }

# One request ID correlates the tiers: the backend's slog line for the
# forwarded query carries the ID the router minted.
grep -q "request_id=$req_id" "$bin/backend-$owner_port.log" \
  || { echo "request id $req_id absent from backend :$owner_port log" >&2; exit 1; }
echo "observability: request $req_id traced through router and backend :$owner_port"

# Kill one backend mid-run: every document must keep answering —
# served from the replica on the survivor. The query strings are fresh
# so the answers provably come from a backend, not the router cache.
kill "$backend2_pid"
wait "$backend2_pid" 2>/dev/null || true
echo "killed backend :7102"
for i in $(seq 1 7); do
  out=$(curl -fsS "http://127.0.0.1:7100/query?doc=doc-$i&q=1%20%2B%20count(//b)")
  echo "$out" | grep -q '"number": *3' || { echo "doc-$i lost after backend kill: $out" >&2; exit 1; }
  echo "$out" | grep -q '"node": *"127.0.0.1:7101"' || { echo "doc-$i not served by the survivor: $out" >&2; exit 1; }
done
batch=$(curl -fsSN http://127.0.0.1:7100/batch \
  -d '{"docs":["doc-1","doc-2","doc-3"],"queries":["count(//b)"]}')
blines=$(echo "$batch" | grep -c '"index":' || true)
[ "$blines" -eq 3 ] || { echo "post-kill batch returned $blines lines, want 3:" >&2; echo "$batch" >&2; exit 1; }
echo "$batch" | grep -q '"error"' && { echo "post-kill batch carried errors:" >&2; echo "$batch" >&2; exit 1; }

# /stats with a down peer degrades instead of failing.
stats=$(curl -fsS http://127.0.0.1:7100/stats)
echo "$stats" | grep -q '"degraded": *true' || { echo "stats with a dead peer not flagged degraded" >&2; exit 1; }

echo "cluster smoke: OK ($lines batch lines across $nodes nodes; replica served all queries after backend kill)"
