#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end smoke test of the cluster layer: boots
# two real xpathserve backends plus an xpathrouter in front, registers
# documents through the router (FNV placement spreads them across both
# nodes), then drives a routed /query and a scatter-gather streamed
# /batch and checks the index/doc/node tags. CI runs this after the
# unit suites; it is also handy locally:
#
#   bash scripts/cluster_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
bin=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/xpathserve" ./cmd/xpathserve
go build -o "$bin/xpathrouter" ./cmd/xpathrouter

"$bin/xpathserve" -addr 127.0.0.1:7101 &
"$bin/xpathserve" -addr 127.0.0.1:7102 &
"$bin/xpathrouter" -addr 127.0.0.1:7100 \
  -peers http://127.0.0.1:7101,http://127.0.0.1:7102 \
  -replica-retry 1 -timeout 5s &

wait_for() {
  for _ in $(seq 1 50); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "timed out waiting for $1" >&2
  return 1
}
wait_for http://127.0.0.1:7101/healthz
wait_for http://127.0.0.1:7102/healthz
wait_for http://127.0.0.1:7100/health

# Register 8 documents through the router; the FNV-1a partitioning
# spreads doc-0..doc-7 across both backends.
for i in $(seq 0 7); do
  curl -fsS http://127.0.0.1:7100/documents \
    -d "{\"name\":\"doc-$i\",\"xml\":\"<a><b/><b/></a>\"}" >/dev/null
done

# Placement check: both backends must own at least one document.
for port in 7101 7102; do
  n=$(curl -fsS "http://127.0.0.1:$port/healthz" | grep -o '"documents": *[0-9]*' | grep -o '[0-9]*$')
  [ "$n" -ge 1 ] || { echo "backend :$port owns no documents" >&2; exit 1; }
  echo "backend :$port owns $n documents"
done

# Routed single-document query: correct value, node provenance tag.
out=$(curl -fsS 'http://127.0.0.1:7100/query?doc=doc-0&q=count(//b)')
echo "$out" | grep -q '"number": *2' || { echo "bad routed query: $out" >&2; exit 1; }
echo "$out" | grep -q '"node": *"127.0.0.1:710' || { echo "missing node tag: $out" >&2; exit 1; }

# Scatter-gather batch across all 8 documents, 2 queries each: 16
# streamed NDJSON lines tagged with index/doc/node, covering both
# backend nodes.
batch=$(curl -fsSN http://127.0.0.1:7100/batch \
  -d '{"docs":["doc-0","doc-1","doc-2","doc-3","doc-4","doc-5","doc-6","doc-7"],"queries":["count(//b)","sum(//b) = 0"]}')
# grep -c exits 1 on zero matches but still prints 0; don't let set -e
# kill the script before the diagnostic below runs.
lines=$(echo "$batch" | grep -c '"index":' || true)
[ "$lines" -eq 16 ] || { echo "batch returned $lines lines, want 16:" >&2; echo "$batch" >&2; exit 1; }
nodes=$(echo "$batch" | grep -o '"node":"127.0.0.1:[0-9]*"' | sort -u | wc -l)
[ "$nodes" -eq 2 ] || { echo "batch lines from $nodes node(s), want 2:" >&2; echo "$batch" >&2; exit 1; }

echo "cluster smoke: OK ($lines batch lines across $nodes nodes)"
